//! Packet Replication Engine (PRE) — §6.3, Fig. 13.
//!
//! The PRE is a hierarchical replication block: a packet is assigned a
//! multicast group id (MGID); the group's level-1 nodes each carry a
//! replication id (RID) and an optional L1 exclusion id (XID); each L1
//! node fans out to egress ports, prunable per packet through an L2 XID
//! that names a port set. The model enforces Tofino's documented budgets:
//!
//! * 64 K multicast groups,
//! * 16.8 M (2²⁴) L1 nodes total across the PRE,
//! * 64 K distinct RIDs usable per tree,
//!
//! and implements both pruning mechanisms exactly as §6.3 describes:
//! an L1 node is skipped when `packet.l1_xid == node.xid` (used to keep
//! meeting *m*'s packets away from meeting *m+1*'s participants when two
//! meetings share a tree), and a port is skipped when `packet.rid ==
//! node.rid && port ∈ l2_xid_ports(packet.l2_xid)` (used to suppress the
//! copy back to the sender).

use crate::tables::TableError;
use std::collections::HashMap;

/// Maximum multicast groups (trees).
pub const MAX_MULTICAST_GROUPS: usize = 65_536;
/// Maximum L1 nodes across the whole PRE.
pub const MAX_L1_NODES: usize = 1 << 24;
/// Maximum RIDs per tree.
pub const MAX_RIDS_PER_TREE: usize = 65_536;

/// Errors configuring the PRE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreError {
    /// All multicast groups are in use.
    GroupsExhausted,
    /// The global L1-node budget is exhausted.
    L1NodesExhausted,
    /// The per-tree RID space is exhausted.
    RidsExhausted,
    /// Unknown multicast group.
    NoSuchGroup,
    /// Unknown node within the group.
    NoSuchNode,
    /// Table bookkeeping error.
    Table(TableError),
}

/// One L1 node: a (RID, XID, ports) triple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L1Node {
    /// Replication id, unique within the tree; identifies the replica in
    /// the egress pipeline.
    pub rid: u16,
    /// L1 exclusion id; pruned when it equals the packet's L1 XID and
    /// pruning is enabled.
    pub xid: u16,
    /// Whether L1-XID pruning applies to this node.
    pub prune_enabled: bool,
    /// Egress ports this node replicates to.
    pub ports: Vec<u16>,
}

/// One produced replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Replica {
    /// RID of the L1 node that produced this copy (keys the egress
    /// match-action lookup).
    pub rid: u16,
    /// Egress port.
    pub port: u16,
}

/// A multicast group (tree).
#[derive(Debug, Clone, Default)]
struct Group {
    nodes: Vec<L1Node>,
}

/// The PRE.
#[derive(Debug)]
pub struct PacketReplicationEngine {
    groups: HashMap<u16, Group>,
    /// L2 XID -> set of ports it prunes.
    l2_xid_ports: HashMap<u16, Vec<u16>>,
    l1_nodes_used: usize,
    /// Replication invocations (for throughput reporting).
    pub invocations: u64,
    /// Replicas produced.
    pub replicas_produced: u64,
}

impl Default for PacketReplicationEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketReplicationEngine {
    /// An empty PRE.
    pub fn new() -> Self {
        PacketReplicationEngine {
            groups: HashMap::new(),
            l2_xid_ports: HashMap::new(),
            l1_nodes_used: 0,
            invocations: 0,
            replicas_produced: 0,
        }
    }

    /// Number of configured trees.
    pub fn groups_used(&self) -> usize {
        self.groups.len()
    }

    /// Number of L1 nodes across all trees.
    pub fn l1_nodes_used(&self) -> usize {
        self.l1_nodes_used
    }

    /// Remaining tree budget.
    pub fn groups_free(&self) -> usize {
        MAX_MULTICAST_GROUPS - self.groups.len()
    }

    /// Create an empty multicast group. Fails when the 64 K budget is
    /// exhausted or the MGID is taken.
    pub fn create_group(&mut self, mgid: u16) -> Result<(), PreError> {
        if self.groups.len() >= MAX_MULTICAST_GROUPS {
            return Err(PreError::GroupsExhausted);
        }
        if self.groups.contains_key(&mgid) {
            return Err(PreError::Table(TableError::Duplicate));
        }
        self.groups.insert(mgid, Group::default());
        Ok(())
    }

    /// Destroy a group, releasing its L1 nodes.
    pub fn destroy_group(&mut self, mgid: u16) -> Result<(), PreError> {
        let g = self.groups.remove(&mgid).ok_or(PreError::NoSuchGroup)?;
        self.l1_nodes_used -= g.nodes.len();
        Ok(())
    }

    /// Add an L1 node to a group.
    pub fn add_node(&mut self, mgid: u16, node: L1Node) -> Result<(), PreError> {
        if self.l1_nodes_used >= MAX_L1_NODES {
            return Err(PreError::L1NodesExhausted);
        }
        let g = self.groups.get_mut(&mgid).ok_or(PreError::NoSuchGroup)?;
        if g.nodes.len() >= MAX_RIDS_PER_TREE {
            return Err(PreError::RidsExhausted);
        }
        g.nodes.push(node);
        self.l1_nodes_used += 1;
        Ok(())
    }

    /// Remove the L1 node with the given RID from a group.
    pub fn remove_node(&mut self, mgid: u16, rid: u16) -> Result<(), PreError> {
        let g = self.groups.get_mut(&mgid).ok_or(PreError::NoSuchGroup)?;
        let before = g.nodes.len();
        g.nodes.retain(|n| n.rid != rid);
        if g.nodes.len() == before {
            return Err(PreError::NoSuchNode);
        }
        self.l1_nodes_used -= before - g.nodes.len();
        Ok(())
    }

    /// Map an L2 XID to the port set it prunes.
    pub fn set_l2_xid_ports(&mut self, xid: u16, ports: Vec<u16>) {
        self.l2_xid_ports.insert(xid, ports);
    }

    /// Retire an L2 XID mapping (participant GC): frees the pruning
    /// entry so the XID — and the RID it shadows — can be recycled for a
    /// later participant without inheriting a stale port set.
    pub fn clear_l2_xid_ports(&mut self, xid: u16) {
        self.l2_xid_ports.remove(&xid);
    }

    /// Number of live L2 XID pruning entries (occupancy auditing).
    pub fn l2_xids_used(&self) -> usize {
        self.l2_xid_ports.len()
    }

    /// Number of nodes in a group.
    pub fn group_size(&self, mgid: u16) -> Option<usize> {
        self.groups.get(&mgid).map(|g| g.nodes.len())
    }

    /// Deterministic dump of the PRE configuration: groups sorted by
    /// MGID with nodes sorted by RID, plus the L2 XID port sets sorted
    /// by XID. Node *insertion order* (replication order) is deliberately
    /// normalized away — two compilers installing the same branch set in
    /// different orders configure the same tree. Statistics counters are
    /// excluded. Used by the compile-equivalence suite.
    pub fn canonical_config(&self) -> String {
        let mut out = String::new();
        let mut mgids: Vec<u16> = self.groups.keys().copied().collect();
        mgids.sort_unstable();
        for mgid in mgids {
            let mut nodes = self.groups[&mgid].nodes.clone();
            nodes.sort_by_key(|n| n.rid);
            out.push_str(&format!("group {mgid}: {nodes:?}\n"));
        }
        let mut xids: Vec<u16> = self.l2_xid_ports.keys().copied().collect();
        xids.sort_unstable();
        for xid in xids {
            out.push_str(&format!("l2_xid {xid}: {:?}\n", self.l2_xid_ports[&xid]));
        }
        out
    }

    /// Replicate a packet: the ingress pipeline supplies the packet's
    /// MGID, L1 XID, RID, and L2 XID metadata (Fig. 13).
    pub fn replicate(
        &mut self,
        mgid: u16,
        pkt_l1_xid: u16,
        pkt_rid: u16,
        pkt_l2_xid: u16,
    ) -> Result<Vec<Replica>, PreError> {
        let mut out = Vec::new();
        self.replicate_into(mgid, pkt_l1_xid, pkt_rid, pkt_l2_xid, &mut out)?;
        Ok(out)
    }

    /// [`Self::replicate`] into a caller-owned buffer (cleared first), so
    /// the per-packet hot path can reuse one allocation across packets.
    pub fn replicate_into(
        &mut self,
        mgid: u16,
        pkt_l1_xid: u16,
        pkt_rid: u16,
        pkt_l2_xid: u16,
        out: &mut Vec<Replica>,
    ) -> Result<(), PreError> {
        out.clear();
        let g = self.groups.get(&mgid).ok_or(PreError::NoSuchGroup)?;
        self.invocations += 1;
        let pruned_ports: &[u16] = self
            .l2_xid_ports
            .get(&pkt_l2_xid)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        for node in &g.nodes {
            if node.prune_enabled && node.xid == pkt_l1_xid {
                continue; // L1 pruning (e.g. other meeting's participants)
            }
            for &port in &node.ports {
                if node.rid == pkt_rid && pruned_ports.contains(&port) {
                    continue; // L2 pruning (e.g. copy back to the sender)
                }
                out.push(Replica {
                    rid: node.rid,
                    port,
                });
            }
        }
        self.replicas_produced += out.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(rid: u16, xid: u16, ports: &[u16]) -> L1Node {
        L1Node {
            rid,
            xid,
            prune_enabled: true,
            ports: ports.to_vec(),
        }
    }

    /// Build Fig. 11(c): two meetings (M1: P1..P3, M2: P1,P2) in one tree.
    fn two_meeting_tree() -> PacketReplicationEngine {
        let mut pre = PacketReplicationEngine::new();
        pre.create_group(1).unwrap();
        // Meeting 1 participants have XID 1, ports 10..12.
        pre.add_node(1, node(101, 1, &[10])).unwrap();
        pre.add_node(1, node(102, 1, &[11])).unwrap();
        pre.add_node(1, node(103, 1, &[12])).unwrap();
        // Meeting 2 participants have XID 2, ports 20..21.
        pre.add_node(1, node(201, 2, &[20])).unwrap();
        pre.add_node(1, node(202, 2, &[21])).unwrap();
        // L2 XIDs prune each participant's own port.
        for (xid, port) in [(10, 10), (11, 11), (12, 12), (20, 20), (21, 21)] {
            pre.set_l2_xid_ports(xid, vec![port]);
        }
        pre
    }

    #[test]
    fn meeting_aggregation_with_l1_pruning() {
        let mut pre = two_meeting_tree();
        // Packet from M1/P1 (rid 101, port 10): exclude meeting 2 (xid 2)
        // and self (rid 101 / l2 xid 10).
        let reps = pre.replicate(1, 2, 101, 10).unwrap();
        let ports: Vec<u16> = reps.iter().map(|r| r.port).collect();
        assert_eq!(ports, vec![11, 12], "only M1 peers receive");
        // Packet from M2/P1 (rid 201): exclude meeting 1 (xid 1) and self.
        let reps = pre.replicate(1, 1, 201, 20).unwrap();
        let ports: Vec<u16> = reps.iter().map(|r| r.port).collect();
        assert_eq!(ports, vec![21]);
    }

    #[test]
    fn l2_pruning_only_applies_to_matching_rid() {
        let mut pre = PacketReplicationEngine::new();
        pre.create_group(5).unwrap();
        // Two nodes that share a port (distinct receivers behind one port
        // is legal in the PRE model).
        pre.add_node(5, node(1, 0, &[7])).unwrap();
        pre.add_node(5, node(2, 0, &[7])).unwrap();
        pre.set_l2_xid_ports(99, vec![7]);
        let reps = pre.replicate(5, 0xFFFF, 1, 99).unwrap();
        // rid 1's port 7 pruned; rid 2's port 7 survives.
        assert_eq!(reps, vec![Replica { rid: 2, port: 7 }]);
    }

    #[test]
    fn no_pruning_when_xids_do_not_match() {
        let mut pre = two_meeting_tree();
        // L1 XID 0 matches nobody; RID 9999 matches nobody: full fan-out.
        let reps = pre.replicate(1, 0, 9999, 0).unwrap();
        assert_eq!(reps.len(), 5);
    }

    #[test]
    fn prune_disabled_nodes_always_replicate() {
        let mut pre = PacketReplicationEngine::new();
        pre.create_group(1).unwrap();
        pre.add_node(
            1,
            L1Node {
                rid: 1,
                xid: 7,
                prune_enabled: false,
                ports: vec![3],
            },
        )
        .unwrap();
        let reps = pre.replicate(1, 7, 0, 0).unwrap();
        assert_eq!(reps.len(), 1);
    }

    #[test]
    fn budgets_enforced() {
        let mut pre = PacketReplicationEngine::new();
        pre.create_group(1).unwrap();
        assert_eq!(
            pre.create_group(1),
            Err(PreError::Table(TableError::Duplicate))
        );
        assert_eq!(pre.replicate(99, 0, 0, 0), Err(PreError::NoSuchGroup));
        assert_eq!(pre.remove_node(1, 42), Err(PreError::NoSuchNode));
    }

    #[test]
    fn node_accounting_across_destroy() {
        let mut pre = two_meeting_tree();
        assert_eq!(pre.l1_nodes_used(), 5);
        assert_eq!(pre.groups_used(), 1);
        pre.remove_node(1, 103).unwrap();
        assert_eq!(pre.l1_nodes_used(), 4);
        pre.destroy_group(1).unwrap();
        assert_eq!(pre.l1_nodes_used(), 0);
        assert_eq!(pre.groups_used(), 0);
    }

    #[test]
    fn replica_counters() {
        let mut pre = two_meeting_tree();
        let _ = pre.replicate(1, 2, 101, 10).unwrap();
        assert_eq!(pre.invocations, 1);
        assert_eq!(pre.replicas_produced, 2);
    }
}
