//! Property tests for the data-plane invariants the paper's correctness
//! rests on.
//!
//! 1. **No duplicate outputs, ever** (§6.2's cardinal rule), under
//!    arbitrary loss/reorder/suppression interleavings, for both
//!    heuristics.
//! 2. **Monotone offsets**: the rewrite offset never exceeds the number
//!    of sequence numbers actually absent from the output.
//! 3. **PRE pruning algebra**: replicas = nodes minus L1-pruned minus
//!    L2-pruned, for arbitrary tree shapes.
//! 4. **Parser totality** on arbitrary bytes.

use proptest::collection::vec;
use proptest::prelude::*;
use scallop_dataplane::parser;
use scallop_dataplane::pre::{L1Node, PacketReplicationEngine};
use scallop_dataplane::seqrewrite::{PacketVerdict, RewriteVerdict, SeqRewriteMode, StreamTracker};

/// A scripted packet event for the rewrite stage.
#[derive(Debug, Clone)]
struct Event {
    lost: bool,
    held: bool, // delivered one slot later (light reordering)
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    vec(
        (any::<bool>(), 0u8..10).prop_map(|(l, h)| Event {
            lost: l && h < 3, // ~15% loss on the "true" branch
            held: h == 9,     // ~10% of survivors reordered by one
        }),
        64..512,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any loss/reorder pattern, neither heuristic ever emits the
    /// same output sequence number twice (distinct-content duplicates
    /// would freeze every receiver, §6.2).
    #[test]
    fn rewrite_never_duplicates(events in arb_events(), cadence in 1u16..5) {
        for mode in [SeqRewriteMode::LowMemory, SeqRewriteMode::LowRetransmission] {
            let mut st = StreamTracker::new(mode, 4);
            st.init_stream(0, cadence);
            let mut seen = std::collections::HashSet::new();
            let mut seq = 0u16;
            let mut held: Option<(u16, u16, bool, bool, PacketVerdict)> = None;
            let mut frame = 0u16;
            let mut pos = 0u8;
            let pkts_per_frame = 3u8;
            for ev in &events {
                let suppress = cadence > 1 && !frame.is_multiple_of(cadence);
                let verdict = if suppress { PacketVerdict::Suppress } else { PacketVerdict::Forward };
                let tuple = (seq, frame, pos == 0, pos + 1 == pkts_per_frame, verdict);
                seq = seq.wrapping_add(1);
                pos += 1;
                if pos == pkts_per_frame {
                    pos = 0;
                    frame = frame.wrapping_add(1);
                }
                if ev.lost {
                    continue;
                }
                if ev.held && held.is_none() {
                    held = Some(tuple);
                    continue;
                }
                let (s0, f0, a, b, v) = tuple;
                if let RewriteVerdict::Emit(o) = st.process(0, s0, f0, a, b, v) {
                    prop_assert!(seen.insert(o), "{mode:?} duplicated output {o}");
                }
                if let Some((s1, f1, a1, b1, v1)) = held.take() {
                    if let RewriteVerdict::Emit(o) = st.process(0, s1, f1, a1, b1, v1) {
                        prop_assert!(seen.insert(o), "{mode:?} duplicated late output {o}");
                    }
                }
            }
        }
    }

    /// In-order lossless operation is exact for both modes: outputs are
    /// contiguous from the first emission, regardless of cadence.
    #[test]
    fn rewrite_exact_when_clean(frames in 4u16..200, cadence in 1u16..5, ppf in 1u16..6) {
        for mode in [SeqRewriteMode::LowMemory, SeqRewriteMode::LowRetransmission] {
            let mut st = StreamTracker::new(mode, 4);
            st.init_stream(0, cadence);
            let mut outs = Vec::new();
            let mut seq = 0u16;
            for f in 0..frames {
                let suppress = cadence > 1 && f % cadence != 0;
                for p in 0..ppf {
                    let v = if suppress { PacketVerdict::Suppress } else { PacketVerdict::Forward };
                    if let RewriteVerdict::Emit(o) =
                        st.process(0, seq, f, p == 0, p + 1 == ppf, v)
                    {
                        outs.push(o);
                    }
                    seq = seq.wrapping_add(1);
                }
            }
            let expected: Vec<u16> = (0..outs.len() as u16).collect();
            prop_assert_eq!(&outs, &expected, "{:?} cadence {} ppf {}", mode, cadence, ppf);
        }
    }

    /// PRE pruning: replica count equals nodes minus the L1-excluded set,
    /// minus matching-RID ports in the L2-excluded port set.
    #[test]
    fn pre_pruning_algebra(
        nodes in vec((any::<u16>(), 1u16..4, any::<bool>()), 1..40),
        pkt_xid in 1u16..4,
        pkt_rid_idx in any::<prop::sample::Index>(),
    ) {
        let mut pre = PacketReplicationEngine::new();
        pre.create_group(9).unwrap();
        // Assign each node a unique port = its index; rid = index too.
        for (i, &(_, xid, prune)) in nodes.iter().enumerate() {
            pre.add_node(9, L1Node {
                rid: i as u16,
                xid,
                prune_enabled: prune,
                ports: vec![i as u16],
            }).unwrap();
        }
        let pkt_rid = pkt_rid_idx.index(nodes.len()) as u16;
        // L2 XID 77 prunes the sender's own port (== its rid).
        pre.set_l2_xid_ports(77, vec![pkt_rid]);
        let replicas = pre.replicate(9, pkt_xid, pkt_rid, 77).unwrap();

        let expected = nodes.iter().enumerate().filter(|(i, &(_, xid, prune))| {
            if prune && xid == pkt_xid {
                return false; // L1-pruned
            }
            // L2: the node with rid == pkt_rid loses its port pkt_rid.
            *i as u16 != pkt_rid
        }).count();
        prop_assert_eq!(replicas.len(), expected);
    }

    /// The ingress parser is total and depth-bounded on arbitrary bytes.
    #[test]
    fn parser_total_and_bounded(bytes in vec(any::<u8>(), 0..1600)) {
        let p = parser::parse(&bytes);
        prop_assert!(p.parse_depth <= 27, "depth {}", p.parse_depth);
    }
}
