use scallop_dataplane::seqrewrite::*;
use scallop_netsim::rng::DetRng;
use std::collections::HashMap;

fn main() {
    let mode = SeqRewriteMode::LowRetransmission;
    let mut rng = DetRng::new(0xABCD);
    let mut st = StreamTracker::new(mode, 4);
    st.init_stream(0, 2);
    let mut seen: HashMap<u16, (u16, u16)> = HashMap::new();
    let mut seq = 0u16;
    let mut pending: Option<(u16, u16, bool, bool, PacketVerdict)> = None;
    let mut log: Vec<String> = Vec::new();
    for f in 0u16..2000 {
        let suppress = f % 2 == 1;
        for p in 0..2 {
            let v = if suppress {
                PacketVerdict::Suppress
            } else {
                PacketVerdict::Forward
            };
            let tuple = (seq, f, p == 0, p == 1, v);
            seq = seq.wrapping_add(1);
            if rng.chance(0.15) {
                log.push(format!("LOST ({},{})", tuple.0, tuple.1));
                continue;
            }
            if rng.chance(0.05) && pending.is_none() {
                log.push(format!("HELD ({},{})", tuple.0, tuple.1));
                pending = Some(tuple);
                continue;
            }
            let (s0, f0, st0, e0, v0) = tuple;
            let r = st.process(0, s0, f0, st0, e0, v0);
            log.push(format!("proc in=({s0},{f0},{st0},{e0},{v0:?}) -> {r:?}"));
            if let RewriteVerdict::Emit(o) = r {
                if let Some(prev) = seen.insert(o, (s0, f0)) {
                    println!("DUP out={o} prev={prev:?} now=({s0},{f0})");
                    for l in log.iter().rev().take(16).rev() {
                        println!("  {l}");
                    }
                    return;
                }
            }
            if let Some((s1, f1, st1, e1, v1)) = pending.take() {
                let r = st.process(0, s1, f1, st1, e1, v1);
                log.push(format!("LATE in=({s1},{f1},{st1},{e1}) -> {r:?}"));
                if let RewriteVerdict::Emit(o) = r {
                    if let Some(prev) = seen.insert(o, (s1, f1)) {
                        println!("DUP-LATE out={o} prev={prev:?} now=({s1},{f1})");
                        for l in log.iter().rev().take(16).rev() {
                            println!("  {l}");
                        }
                        return;
                    }
                }
            }
        }
    }
    println!("no dup");
}
