//! Property tests: wire-format round trips and total parsers.
//!
//! Two invariant families:
//! 1. serialize → parse is the identity for every valid message,
//! 2. parsers never panic on arbitrary bytes (they are run on every input
//!    the fuzzer produces; errors are fine, panics are not).

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use scallop_proto::av1::{DependencyDescriptor, Dti, TemplateInfo, TemplateStructure};
use scallop_proto::rtcp::{
    self, Bye, Nack, Pli, ReceiverReport, Remb, ReportBlock, RtcpPacket, Sdes, SenderReport,
};
use scallop_proto::rtp::{ExtensionElement, ExtensionProfile, RtpPacket};
use scallop_proto::sdp::SessionDescription;
use scallop_proto::stun::StunMessage;
use scallop_proto::{classify, PacketClass};

fn arb_rtp() -> impl Strategy<Value = RtpPacket> {
    (
        any::<bool>(),
        0u8..128,
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        vec(any::<u32>(), 0..4),
        vec((1u8..15, vec(any::<u8>(), 1..17)), 0..3),
        vec(any::<u8>(), 0..1200),
    )
        .prop_map(
            |(marker, pt, seq, ts, ssrc, csrc, exts, payload)| RtpPacket {
                marker,
                payload_type: pt,
                sequence_number: seq,
                timestamp: ts,
                ssrc,
                csrc,
                extension_profile: ExtensionProfile::OneByte,
                extensions: exts
                    .into_iter()
                    .map(|(id, data)| ExtensionElement { id, data })
                    .collect(),
                payload: Bytes::from(payload),
            },
        )
}

fn arb_report_block() -> impl Strategy<Value = ReportBlock> {
    (
        any::<u32>(),
        any::<u8>(),
        0u32..0x00FF_FFFF,
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(
            |(ssrc, fraction_lost, cumulative_lost, highest_seq, jitter, lsr, dlsr)| ReportBlock {
                ssrc,
                fraction_lost,
                cumulative_lost,
                highest_seq,
                jitter,
                lsr,
                dlsr,
            },
        )
}

fn arb_rtcp() -> impl Strategy<Value = RtcpPacket> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            vec(arb_report_block(), 0..4)
        )
            .prop_map(
                |(ssrc, ntp_sec, ntp_frac, rtp_ts, packet_count, octet_count, reports)| {
                    RtcpPacket::Sr(SenderReport {
                        ssrc,
                        ntp_sec,
                        ntp_frac,
                        rtp_ts,
                        packet_count,
                        octet_count,
                        reports,
                    })
                }
            ),
        (any::<u32>(), vec(arb_report_block(), 0..4))
            .prop_map(|(ssrc, reports)| RtcpPacket::Rr(ReceiverReport { ssrc, reports })),
        vec((any::<u32>(), "[a-z]{1,20}"), 1..4)
            .prop_map(|chunks| RtcpPacket::Sdes(Sdes { chunks })),
        vec(any::<u32>(), 0..5).prop_map(|ssrcs| RtcpPacket::Bye(Bye { ssrcs })),
        (
            any::<u32>(),
            any::<u32>(),
            vec((any::<u16>(), any::<u16>()), 1..8)
        )
            .prop_map(|(sender_ssrc, media_ssrc, entries)| RtcpPacket::Nack(Nack {
                sender_ssrc,
                media_ssrc,
                entries
            })),
        (any::<u32>(), any::<u32>()).prop_map(|(sender_ssrc, media_ssrc)| RtcpPacket::Pli(Pli {
            sender_ssrc,
            media_ssrc
        })),
        // REMB bitrates restricted to exactly-representable mantissas.
        (any::<u32>(), 0u64..(1 << 18), vec(any::<u32>(), 0..4)).prop_map(
            |(sender_ssrc, bitrate_bps, ssrcs)| RtcpPacket::Remb(Remb {
                sender_ssrc,
                bitrate_bps,
                ssrcs
            })
        ),
    ]
}

fn arb_dd() -> impl Strategy<Value = DependencyDescriptor> {
    (
        any::<bool>(),
        any::<bool>(),
        0u8..64,
        any::<u16>(),
        proptest::option::of((1u8..8, 1usize..10).prop_flat_map(|(dt_cnt, tpl_cnt)| {
            (
                0u8..64,
                vec(
                    (
                        0u8..4,
                        0u8..8,
                        vec(0u8..4, dt_cnt as usize..=dt_cnt as usize),
                    ),
                    tpl_cnt..=tpl_cnt,
                ),
            )
                .prop_map(move |(offset, tpls)| TemplateStructure {
                    template_id_offset: offset,
                    decode_target_count: dt_cnt,
                    templates: tpls
                        .into_iter()
                        .map(|(s, t, dtis)| TemplateInfo {
                            spatial_id: s,
                            temporal_id: t,
                            dtis: dtis
                                .into_iter()
                                .map(|d| match d {
                                    0 => Dti::NotPresent,
                                    1 => Dti::Discardable,
                                    2 => Dti::Switch,
                                    _ => Dti::Required,
                                })
                                .collect(),
                        })
                        .collect(),
                })
        })),
        proptest::option::of(any::<u32>()),
    )
        .prop_map(|(s, e, tid, fno, structure, adt)| DependencyDescriptor {
            start_of_frame: s,
            end_of_frame: e,
            template_id: tid,
            frame_number: fno,
            structure,
            active_decode_targets: adt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rtp_round_trip(p in arb_rtp()) {
        let bytes = p.serialize();
        let q = RtpPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn rtp_classified_as_rtp(p in arb_rtp()) {
        // Payload types 64..=95 with the marker bit set collide with the
        // RTCP PT range (WebRTC avoids them); exclude that corner.
        let second = ((p.marker as u8) << 7) | p.payload_type;
        prop_assume!(!(192..=223).contains(&second));
        prop_assert_eq!(classify(&p.serialize()), PacketClass::Rtp);
    }

    #[test]
    fn rtcp_round_trip(p in arb_rtcp()) {
        let bytes = rtcp::serialize(&p);
        let (q, used) = rtcp::parse_one(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(p, q);
    }

    #[test]
    fn rtcp_compound_round_trip(ps in vec(arb_rtcp(), 1..5)) {
        let bytes = rtcp::serialize_compound(&ps);
        let qs = rtcp::parse_compound(&bytes).unwrap();
        prop_assert_eq!(ps, qs);
    }

    #[test]
    fn dd_round_trip(dd in arb_dd()) {
        let bytes = dd.serialize();
        let q = DependencyDescriptor::parse(&bytes).unwrap();
        prop_assert_eq!(dd, q);
    }

    #[test]
    fn stun_round_trip(
        tid in proptest::array::uniform12(any::<u8>()),
        username in proptest::option::of("[a-zA-Z0-9:]{1,32}"),
        ip in any::<[u8;4]>(),
        port in any::<u16>(),
    ) {
        let mut m = StunMessage::binding_success(tid, ip.into(), port);
        if let Some(u) = &username {
            m.set_username(u);
        }
        let parsed = StunMessage::parse(&m.serialize()).unwrap();
        prop_assert_eq!(&parsed, &m);
        prop_assert_eq!(parsed.xor_mapped_address(), Some((ip.into(), port)));
    }

    // ----- totality: no parser panics on arbitrary bytes -----

    #[test]
    fn rtp_parse_total(bytes in vec(any::<u8>(), 0..256)) {
        let _ = RtpPacket::parse(&bytes);
    }

    #[test]
    fn rtcp_parse_total(bytes in vec(any::<u8>(), 0..256)) {
        let _ = rtcp::parse_compound(&bytes);
    }

    #[test]
    fn stun_parse_total(bytes in vec(any::<u8>(), 0..256)) {
        let _ = StunMessage::parse(&bytes);
    }

    #[test]
    fn dd_parse_total(bytes in vec(any::<u8>(), 0..64)) {
        let _ = DependencyDescriptor::parse(&bytes);
        let _ = DependencyDescriptor::parse_mandatory(&bytes);
    }

    #[test]
    fn sdp_parse_total(text in "[ -~\\r\\n]{0,512}") {
        let _ = SessionDescription::parse(&text);
    }

    #[test]
    fn classify_total(bytes in vec(any::<u8>(), 0..64)) {
        let _ = classify(&bytes);
    }
}
