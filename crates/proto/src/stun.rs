//! STUN (RFC 5389) binding messages.
//!
//! WebRTC's ICE layer sends periodic STUN binding requests as connectivity
//! checks and RTT probes. The paper classifies these as latency-tolerant
//! (§5.1): Scallop's data plane detects them by the first two zero bits and
//! the magic cookie, then punts them to the switch agent, which answers
//! with a binding success response carrying XOR-MAPPED-ADDRESS.
//!
//! Implemented: binding request / success response, XOR-MAPPED-ADDRESS,
//! USERNAME, PRIORITY, and opaque pass-through of unknown attributes.
//! Omitted: MESSAGE-INTEGRITY and FINGERPRINT (no crypto in this
//! reproduction, consistent with §8), TURN methods, error responses.

use crate::error::{need, ProtoError};
use std::net::Ipv4Addr;

/// STUN magic cookie (RFC 5389 §6).
pub const MAGIC_COOKIE: u32 = 0x2112_A442;

/// Method+class: binding request.
pub const TYPE_BINDING_REQUEST: u16 = 0x0001;
/// Method+class: binding success response.
pub const TYPE_BINDING_SUCCESS: u16 = 0x0101;
/// Method+class: binding indication (keepalive without response).
pub const TYPE_BINDING_INDICATION: u16 = 0x0011;

/// Attribute: XOR-MAPPED-ADDRESS.
pub const ATTR_XOR_MAPPED_ADDRESS: u16 = 0x0020;
/// Attribute: USERNAME.
pub const ATTR_USERNAME: u16 = 0x0006;
/// Attribute: PRIORITY (ICE).
pub const ATTR_PRIORITY: u16 = 0x0024;

/// A parsed STUN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StunMessage {
    /// Message type (method + class bits).
    pub msg_type: u16,
    /// 96-bit transaction id.
    pub transaction_id: [u8; 12],
    /// Attributes in order: `(type, value)`.
    pub attributes: Vec<(u16, Vec<u8>)>,
}

impl StunMessage {
    /// A binding request with the given transaction id.
    pub fn binding_request(transaction_id: [u8; 12]) -> Self {
        StunMessage {
            msg_type: TYPE_BINDING_REQUEST,
            transaction_id,
            attributes: Vec::new(),
        }
    }

    /// A binding success response mirroring `transaction_id` and reporting
    /// the observed reflexive address.
    pub fn binding_success(transaction_id: [u8; 12], ip: Ipv4Addr, port: u16) -> Self {
        let mut m = StunMessage {
            msg_type: TYPE_BINDING_SUCCESS,
            transaction_id,
            attributes: Vec::new(),
        };
        m.set_xor_mapped_address(ip, port);
        m
    }

    /// True for binding requests.
    pub fn is_request(&self) -> bool {
        self.msg_type & 0x0110 == 0x0000
    }

    /// True for success responses.
    pub fn is_success_response(&self) -> bool {
        self.msg_type & 0x0110 == 0x0100
    }

    /// Find the raw value of an attribute.
    pub fn attribute(&self, ty: u16) -> Option<&[u8]> {
        self.attributes
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, v)| v.as_slice())
    }

    /// Append a USERNAME attribute.
    pub fn set_username(&mut self, username: &str) {
        self.attributes
            .push((ATTR_USERNAME, username.as_bytes().to_vec()));
    }

    /// Read the USERNAME attribute.
    pub fn username(&self) -> Option<String> {
        self.attribute(ATTR_USERNAME)
            .map(|v| String::from_utf8_lossy(v).into_owned())
    }

    /// Append an XOR-MAPPED-ADDRESS attribute (IPv4).
    pub fn set_xor_mapped_address(&mut self, ip: Ipv4Addr, port: u16) {
        let xport = port ^ (MAGIC_COOKIE >> 16) as u16;
        let xip = u32::from(ip) ^ MAGIC_COOKIE;
        let mut v = Vec::with_capacity(8);
        v.push(0); // reserved
        v.push(0x01); // family: IPv4
        v.extend_from_slice(&xport.to_be_bytes());
        v.extend_from_slice(&xip.to_be_bytes());
        self.attributes.push((ATTR_XOR_MAPPED_ADDRESS, v));
    }

    /// Decode the XOR-MAPPED-ADDRESS attribute.
    pub fn xor_mapped_address(&self) -> Option<(Ipv4Addr, u16)> {
        let v = self.attribute(ATTR_XOR_MAPPED_ADDRESS)?;
        if v.len() < 8 || v[1] != 0x01 {
            return None;
        }
        let xport = u16::from_be_bytes([v[2], v[3]]);
        let xip = u32::from_be_bytes([v[4], v[5], v[6], v[7]]);
        Some((
            Ipv4Addr::from(xip ^ MAGIC_COOKIE),
            xport ^ (MAGIC_COOKIE >> 16) as u16,
        ))
    }

    /// Serialize to bytes.
    pub fn serialize(&self) -> Vec<u8> {
        let attrs_len: usize = self
            .attributes
            .iter()
            .map(|(_, v)| 4 + v.len().div_ceil(4) * 4)
            .sum();
        let mut out = Vec::with_capacity(20 + attrs_len);
        out.extend_from_slice(&self.msg_type.to_be_bytes());
        out.extend_from_slice(&(attrs_len as u16).to_be_bytes());
        out.extend_from_slice(&MAGIC_COOKIE.to_be_bytes());
        out.extend_from_slice(&self.transaction_id);
        for (ty, v) in &self.attributes {
            out.extend_from_slice(&ty.to_be_bytes());
            out.extend_from_slice(&(v.len() as u16).to_be_bytes());
            out.extend_from_slice(v);
            while out.len() % 4 != 0 {
                out.push(0);
            }
        }
        out
    }

    /// Parse from bytes.
    pub fn parse(buf: &[u8]) -> Result<StunMessage, ProtoError> {
        need(buf, 20)?;
        if buf[0] & 0xC0 != 0 {
            return Err(ProtoError::BadMagic);
        }
        let msg_type = u16::from_be_bytes([buf[0], buf[1]]);
        let len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        let cookie = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        if cookie != MAGIC_COOKIE {
            return Err(ProtoError::BadMagic);
        }
        need(buf, 20 + len)?;
        let mut transaction_id = [0u8; 12];
        transaction_id.copy_from_slice(&buf[8..20]);
        let mut attributes = Vec::new();
        let mut rest = &buf[20..20 + len];
        while !rest.is_empty() {
            need(rest, 4)?;
            let ty = u16::from_be_bytes([rest[0], rest[1]]);
            let alen = u16::from_be_bytes([rest[2], rest[3]]) as usize;
            need(&rest[4..], alen)?;
            attributes.push((ty, rest[4..4 + alen].to_vec()));
            // Attributes are padded to 32-bit boundaries; tolerate a
            // missing final pad on the last attribute.
            let padded = 4 + alen.div_ceil(4) * 4;
            rest = &rest[padded.min(rest.len())..];
        }
        Ok(StunMessage {
            msg_type,
            transaction_id,
            attributes,
        })
    }
}

/// Cheap wire test: does this UDP payload look like STUN? (First two bits
/// zero + magic cookie; the check Scallop's ingress parser applies.)
pub fn is_stun(buf: &[u8]) -> bool {
    buf.len() >= 20
        && buf[0] & 0xC0 == 0
        && u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) == MAGIC_COOKIE
}

#[cfg(test)]
mod tests {
    use super::*;

    const TID: [u8; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];

    #[test]
    fn request_round_trip() {
        let mut req = StunMessage::binding_request(TID);
        req.set_username("alice:bob");
        req.attributes.push((ATTR_PRIORITY, vec![0, 1, 2, 3]));
        let bytes = req.serialize();
        assert!(is_stun(&bytes));
        let parsed = StunMessage::parse(&bytes).unwrap();
        assert_eq!(parsed, req);
        assert!(parsed.is_request());
        assert!(!parsed.is_success_response());
        assert_eq!(parsed.username().as_deref(), Some("alice:bob"));
    }

    #[test]
    fn success_response_with_xor_address() {
        let ip = Ipv4Addr::new(192, 168, 1, 77);
        let resp = StunMessage::binding_success(TID, ip, 50000);
        let bytes = resp.serialize();
        let parsed = StunMessage::parse(&bytes).unwrap();
        assert!(parsed.is_success_response());
        assert_eq!(parsed.xor_mapped_address(), Some((ip, 50000)));
        assert_eq!(parsed.transaction_id, TID);
    }

    #[test]
    fn xor_actually_obfuscates() {
        let ip = Ipv4Addr::new(10, 0, 0, 1);
        let resp = StunMessage::binding_success(TID, ip, 4242);
        let raw = resp.attribute(ATTR_XOR_MAPPED_ADDRESS).unwrap();
        // The raw attribute must NOT contain the plain ip/port.
        assert_ne!(&raw[4..8], &u32::from(ip).to_be_bytes());
        assert_ne!(u16::from_be_bytes([raw[2], raw[3]]), 4242);
    }

    #[test]
    fn odd_length_attribute_padding() {
        let mut m = StunMessage::binding_request(TID);
        m.set_username("abc"); // 3 bytes -> 1 byte pad
        let bytes = m.serialize();
        assert_eq!(bytes.len() % 4, 0);
        let parsed = StunMessage::parse(&bytes).unwrap();
        assert_eq!(parsed.username().as_deref(), Some("abc"));
    }

    #[test]
    fn rejects_non_stun() {
        assert!(!is_stun(b"too short"));
        let mut bytes = StunMessage::binding_request(TID).serialize();
        bytes[4] = 0; // break cookie
        assert!(!is_stun(&bytes));
        assert_eq!(StunMessage::parse(&bytes), Err(ProtoError::BadMagic));
        // RTP-looking first byte.
        let mut rtpish = StunMessage::binding_request(TID).serialize();
        rtpish[0] = 0x80;
        assert!(!is_stun(&rtpish));
        assert_eq!(StunMessage::parse(&rtpish), Err(ProtoError::BadMagic));
    }

    #[test]
    fn rejects_truncated_attribute() {
        let mut m = StunMessage::binding_request(TID);
        m.set_username("abcdef");
        let mut bytes = m.serialize();
        // Claim a longer attribute than present.
        bytes[22] = 0x00;
        bytes[23] = 0xFF;
        assert!(StunMessage::parse(&bytes).is_err());
    }

    #[test]
    fn indication_classified() {
        let ind = StunMessage {
            msg_type: TYPE_BINDING_INDICATION,
            transaction_id: TID,
            attributes: vec![],
        };
        let parsed = StunMessage::parse(&ind.serialize()).unwrap();
        assert!(!parsed.is_request());
        assert!(!parsed.is_success_response());
    }
}
