//! # scallop-proto — conferencing wire formats
//!
//! Parsers and serializers for every protocol a WebRTC SFU touches on the
//! wire, implemented from the RFCs the paper builds on:
//!
//! * [`rtp`] — RTP (RFC 3550) with RFC 8285 one-byte / two-byte header
//!   extensions. Scallop's data plane forwards, replicates, and rewrites
//!   these packets (§3, §6).
//! * [`rtcp`] — RTCP compound packets: SR, RR, SDES, BYE, NACK (RTPFB),
//!   PLI and REMB (PSFB). Scallop's switch agent analyzes RRs and REMBs to
//!   drive rate adaptation (§5.2–5.5).
//! * [`stun`] — STUN (RFC 5389) binding requests/responses used by ICE
//!   connectivity checks; handled in Scallop's control plane (§5.1).
//! * [`sdp`] — a Session Description Protocol subset sufficient for
//!   WebRTC offer/answer with ICE candidates; Scallop's controller rewrites
//!   candidates to splice itself into the media path (§5.1).
//! * [`av1`] — the AV1 dependency descriptor RTP extension carrying the
//!   SVC template id each packet belongs to; the data plane parses the
//!   mandatory fields, the control plane the extended structure (§5.4,
//!   Appendix E).
//! * [`demux`] — the first-nibble UDP payload classifier (RTP vs RTCP vs
//!   STUN) that Scallop's ingress parser applies (Appendix E).
//!
//! ## Design notes
//!
//! Parsers are total over arbitrary bytes (property-tested: no panics),
//! return typed [`ProtoError`]s, and operate on `&[u8]` without copying
//! payloads. Serializers produce `Vec<u8>`/`bytes::Bytes` and round-trip
//! exactly with the parsers.
//!
//! ## Omissions (documented per the smoltcp tradition)
//!
//! * SRTP encryption/authentication is not implemented (paper §8 leaves it
//!   to future work; payloads here are opaque plaintext).
//! * RTCP XR, transport-wide CC (TWCC) feedback, and compound-packet
//!   padding variants are not implemented — the paper's design explicitly
//!   chooses REMB over TWCC (§5.2).
//! * The AV1 extended dependency descriptor uses a faithful but simplified
//!   bit layout for template structures (see [`av1`] docs).

pub mod av1;
pub mod bits;
pub mod demux;
pub mod error;
pub mod rtcp;
pub mod rtp;
pub mod sdp;
pub mod stun;

pub use demux::{classify, PacketClass};
pub use error::ProtoError;

/// Synchronization source identifier (RFC 3550).
pub type Ssrc = u32;
