//! UDP payload classification (RTP vs RTCP vs STUN).
//!
//! Scallop's ingress parser "looks ahead into the first 4 bits of the UDP
//! payload to determine whether the packet resembles an RTP or an RTCP
//! packet" (Appendix E). This module implements that classifier following
//! RFC 7983's demultiplexing scheme plus the RTCP packet-type range test:
//!
//! * first byte 0–3 → STUN (verified via magic cookie),
//! * first two bits `10` (values 128–191) → RTP or RTCP,
//!   * second byte in 192..=223 → RTCP,
//!   * otherwise → RTP.

use crate::stun;

/// The classification Scallop's data plane assigns to a UDP payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// STUN connectivity check (control plane, §5.1).
    Stun,
    /// RTP media (data plane: replicate/forward/drop, §6).
    Rtp,
    /// RTCP feedback or reports (forwarded by the data plane; copies go to
    /// the switch agent, §5.5).
    Rtcp,
    /// Anything else (dropped by the SFU).
    Unknown,
}

/// Classify a UDP payload by its first bytes.
pub fn classify(payload: &[u8]) -> PacketClass {
    let Some(&b0) = payload.first() else {
        return PacketClass::Unknown;
    };
    match b0 >> 6 {
        0b00 => {
            if stun::is_stun(payload) {
                PacketClass::Stun
            } else {
                PacketClass::Unknown
            }
        }
        0b10 => {
            // RTP version 2. Disambiguate RTCP by packet type range.
            match payload.get(1) {
                Some(&pt) if (192..=223).contains(&pt) => PacketClass::Rtcp,
                Some(_) => PacketClass::Rtp,
                None => PacketClass::Unknown,
            }
        }
        _ => PacketClass::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtcp::{self, Pli, RtcpPacket};
    use crate::rtp::RtpPacket;
    use crate::stun::StunMessage;

    #[test]
    fn classifies_rtp() {
        let p = RtpPacket::new(96, 1, 2, 3);
        assert_eq!(classify(&p.serialize()), PacketClass::Rtp);
        // Payload type 127 (max dynamic) still RTP.
        let p = RtpPacket::new(127, 1, 2, 3);
        assert_eq!(classify(&p.serialize()), PacketClass::Rtp);
    }

    #[test]
    fn classifies_rtcp() {
        let p = RtcpPacket::Pli(Pli {
            sender_ssrc: 1,
            media_ssrc: 2,
        });
        assert_eq!(classify(&rtcp::serialize(&p)), PacketClass::Rtcp);
    }

    #[test]
    fn classifies_stun() {
        let m = StunMessage::binding_request([0; 12]);
        assert_eq!(classify(&m.serialize()), PacketClass::Stun);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(classify(&[]), PacketClass::Unknown);
        assert_eq!(classify(&[0x00, 0x01, 0x02]), PacketClass::Unknown); // short, no cookie
        assert_eq!(classify(&[0xC0, 0xFF]), PacketClass::Unknown); // version 3
        assert_eq!(classify(&[0x40]), PacketClass::Unknown); // version 1
        assert_eq!(classify(&[0x80]), PacketClass::Unknown); // RTP nibble but 1 byte
    }

    #[test]
    fn rtp_with_marker_and_high_pt_not_confused_with_rtcp() {
        // marker=1, pt=96 -> second byte 0xE0? No: 0x80|96 = 0xE0 = 224,
        // just above the RTCP range; must classify as RTP.
        let mut p = RtpPacket::new(96, 1, 2, 3);
        p.marker = true;
        assert_eq!(classify(&p.serialize()), PacketClass::Rtp);
        // And marker=1 pt=72..95 would collide with RTCP range by design;
        // WebRTC avoids those payload types for exactly this reason.
    }
}
