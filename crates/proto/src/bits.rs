//! MSB-first bit reader/writer used by the AV1 dependency descriptor.
//!
//! The AV1 RTP extension packs fields at bit granularity (Appendix E of the
//! paper discusses why this is painful for switch parsers). These helpers
//! implement the `f(n)` fixed-width read/write primitive of the AV1 spec.

use crate::error::ProtoError;

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Bit offset from the start of `buf`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read `n` bits (0..=64) as a big-endian integer.
    pub fn read(&mut self, n: usize) -> Result<u64, ProtoError> {
        debug_assert!(n <= 64);
        if self.remaining() < n {
            return Err(ProtoError::Truncated {
                needed: (self.pos + n).div_ceil(8),
                got: self.buf.len(),
            });
        }
        let mut v: u64 = 0;
        for _ in 0..n {
            let byte = self.buf[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Read a single flag bit.
    pub fn read_bool(&mut self) -> Result<bool, ProtoError> {
        Ok(self.read(1)? == 1)
    }

    /// Skip to the next byte boundary (reading zero-bits).
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

/// MSB-first bit writer producing a `Vec<u8>`.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Number of valid bits in the last byte (0 = byte-aligned).
    bit_fill: usize,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `v`, MSB first.
    pub fn write(&mut self, v: u64, n: usize) {
        debug_assert!(n <= 64);
        debug_assert!(
            n == 64 || v < (1u64 << n),
            "value {v} does not fit in {n} bits"
        );
        for i in (0..n).rev() {
            let bit = ((v >> i) & 1) as u8;
            if self.bit_fill == 0 {
                self.out.push(0);
            }
            let last = self.out.last_mut().expect("just pushed");
            *last |= bit << (7 - self.bit_fill);
            self.bit_fill = (self.bit_fill + 1) % 8;
        }
    }

    /// Append a flag bit.
    pub fn write_bool(&mut self, b: bool) {
        self.write(b as u64, 1);
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align(&mut self) {
        if self.bit_fill != 0 {
            self.bit_fill = 0;
        }
    }

    /// Number of complete bytes written so far (after alignment).
    pub fn len_bytes(&self) -> usize {
        self.out.len()
    }

    /// Finish, padding to a byte boundary with zeros.
    pub fn finish(mut self) -> Vec<u8> {
        self.align();
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fields() {
        let mut w = BitWriter::new();
        w.write_bool(true);
        w.write_bool(false);
        w.write(0x2A, 6); // 42 in 6 bits
        w.write(0xBEEF, 16);
        w.write(5, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bool().unwrap());
        assert!(!r.read_bool().unwrap());
        assert_eq!(r.read(6).unwrap(), 0x2A);
        assert_eq!(r.read(16).unwrap(), 0xBEEF);
        assert_eq!(r.read(3).unwrap(), 5);
    }

    #[test]
    fn reader_detects_truncation() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read(8).unwrap(), 0xFF);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn alignment() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.align();
        w.write(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1000_0000, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(1).unwrap(), 1);
        r.align();
        assert_eq!(r.read(8).unwrap(), 0xAB);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_order_is_msb_first() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn position_tracking() {
        let mut r = BitReader::new(&[0x00, 0x00]);
        assert_eq!(r.position(), 0);
        let _ = r.read(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn write_64_bit_values() {
        let mut w = BitWriter::new();
        w.write(u64::MAX, 64);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF; 8]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(64).unwrap(), u64::MAX);
    }
}
