//! RTCP (RFC 3550) compound packets and the feedback messages Scallop uses.
//!
//! The switch agent's entire rate-adaptation loop is driven by RTCP:
//! receiver reports and REMB messages flow to the agent (§5.2–5.3), NACK
//! and PLI are forwarded through the data plane to the media sender
//! (§5.5), and sender reports time-synchronize streams. This module
//! implements parse/serialize for exactly that message set:
//!
//! * SR (PT 200), RR (PT 201) with report blocks,
//! * SDES (PT 202, CNAME item), BYE (PT 203),
//! * Generic NACK (PT 205 / FMT 1, RFC 4585),
//! * PLI (PT 206 / FMT 1, RFC 4585),
//! * REMB (PT 206 / FMT 15, draft-alvestrand-rmcat-remb).

use crate::error::{need, ProtoError};

/// RTCP packet type: sender report.
pub const PT_SR: u8 = 200;
/// RTCP packet type: receiver report.
pub const PT_RR: u8 = 201;
/// RTCP packet type: source description.
pub const PT_SDES: u8 = 202;
/// RTCP packet type: goodbye.
pub const PT_BYE: u8 = 203;
/// RTCP packet type: transport-layer feedback (NACK lives here).
pub const PT_RTPFB: u8 = 205;
/// RTCP packet type: payload-specific feedback (PLI, REMB).
pub const PT_PSFB: u8 = 206;

/// A reception report block (RFC 3550 §6.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportBlock {
    /// SSRC of the reported-on source.
    pub ssrc: u32,
    /// Fraction of packets lost since the last report (fixed point /256).
    pub fraction_lost: u8,
    /// Cumulative packets lost (24-bit signed, clamped here to u32).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in timestamp units.
    pub jitter: u32,
    /// Last SR timestamp.
    pub lsr: u32,
    /// Delay since last SR (1/65536 s units).
    pub dlsr: u32,
}

/// Sender report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenderReport {
    /// Sender's SSRC.
    pub ssrc: u32,
    /// NTP timestamp, seconds part.
    pub ntp_sec: u32,
    /// NTP timestamp, fractional part.
    pub ntp_frac: u32,
    /// RTP timestamp corresponding to the NTP timestamp.
    pub rtp_ts: u32,
    /// Packets sent.
    pub packet_count: u32,
    /// Payload octets sent.
    pub octet_count: u32,
    /// Reception report blocks.
    pub reports: Vec<ReportBlock>,
}

/// Receiver report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverReport {
    /// Reporter's SSRC.
    pub ssrc: u32,
    /// Reception report blocks.
    pub reports: Vec<ReportBlock>,
}

/// Source description: one CNAME per chunk (the only item WebRTC uses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sdes {
    /// `(ssrc, cname)` chunks.
    pub chunks: Vec<(u32, String)>,
}

/// Goodbye.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bye {
    /// Sources leaving the session.
    pub ssrcs: Vec<u32>,
}

/// Generic NACK (RFC 4585 §6.2.1): each entry names a lost packet id and a
/// bitmask of 16 following packets also lost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nack {
    /// SSRC of the feedback sender.
    pub sender_ssrc: u32,
    /// SSRC of the media source this feedback is about.
    pub media_ssrc: u32,
    /// `(packet id, bitmask of following lost packets)` pairs.
    pub entries: Vec<(u16, u16)>,
}

impl Nack {
    /// Expand the compressed `(pid, blp)` entries into the full list of
    /// missing sequence numbers.
    pub fn lost_sequences(&self) -> Vec<u16> {
        let mut out = Vec::new();
        for &(pid, blp) in &self.entries {
            out.push(pid);
            for bit in 0..16 {
                if blp & (1 << bit) != 0 {
                    out.push(pid.wrapping_add(bit + 1));
                }
            }
        }
        out
    }

    /// Compress a sorted list of missing sequence numbers into `(pid, blp)`
    /// entries.
    pub fn from_lost_sequences(sender_ssrc: u32, media_ssrc: u32, lost: &[u16]) -> Nack {
        let mut entries: Vec<(u16, u16)> = Vec::new();
        for &seq in lost {
            if let Some(last) = entries.last_mut() {
                let delta = seq.wrapping_sub(last.0);
                if (1..=16).contains(&delta) {
                    last.1 |= 1 << (delta - 1);
                    continue;
                }
            }
            entries.push((seq, 0));
        }
        Nack {
            sender_ssrc,
            media_ssrc,
            entries,
        }
    }
}

/// Picture loss indication (RFC 4585 §6.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pli {
    /// SSRC of the feedback sender.
    pub sender_ssrc: u32,
    /// SSRC of the media source asked to refresh.
    pub media_ssrc: u32,
}

/// Receiver-estimated maximum bitrate (REMB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remb {
    /// SSRC of the feedback sender.
    pub sender_ssrc: u32,
    /// Estimated available bitrate in bits/s.
    pub bitrate_bps: u64,
    /// Media SSRCs the estimate applies to.
    pub ssrcs: Vec<u32>,
}

/// Any RTCP packet Scallop understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtcpPacket {
    /// Sender report.
    Sr(SenderReport),
    /// Receiver report.
    Rr(ReceiverReport),
    /// Source description.
    Sdes(Sdes),
    /// Goodbye.
    Bye(Bye),
    /// Generic NACK.
    Nack(Nack),
    /// Picture loss indication.
    Pli(Pli),
    /// Receiver-estimated max bitrate.
    Remb(Remb),
}

impl RtcpPacket {
    /// The RTCP packet type byte this variant serializes with.
    pub fn packet_type(&self) -> u8 {
        match self {
            RtcpPacket::Sr(_) => PT_SR,
            RtcpPacket::Rr(_) => PT_RR,
            RtcpPacket::Sdes(_) => PT_SDES,
            RtcpPacket::Bye(_) => PT_BYE,
            RtcpPacket::Nack(_) => PT_RTPFB,
            RtcpPacket::Pli(_) | RtcpPacket::Remb(_) => PT_PSFB,
        }
    }
}

fn push_header(out: &mut Vec<u8>, count_or_fmt: u8, pt: u8, body_len: usize) {
    debug_assert_eq!(body_len % 4, 0);
    out.push(0x80 | (count_or_fmt & 0x1F));
    out.push(pt);
    out.extend_from_slice(&((body_len / 4) as u16).to_be_bytes());
}

fn push_report_block(out: &mut Vec<u8>, b: &ReportBlock) {
    out.extend_from_slice(&b.ssrc.to_be_bytes());
    out.push(b.fraction_lost);
    let cum = b.cumulative_lost.min(0x00FF_FFFF);
    out.extend_from_slice(&cum.to_be_bytes()[1..4]);
    out.extend_from_slice(&b.highest_seq.to_be_bytes());
    out.extend_from_slice(&b.jitter.to_be_bytes());
    out.extend_from_slice(&b.lsr.to_be_bytes());
    out.extend_from_slice(&b.dlsr.to_be_bytes());
}

fn parse_report_block(buf: &[u8]) -> ReportBlock {
    ReportBlock {
        ssrc: u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
        fraction_lost: buf[4],
        cumulative_lost: u32::from_be_bytes([0, buf[5], buf[6], buf[7]]),
        highest_seq: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
        jitter: u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]]),
        lsr: u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]]),
        dlsr: u32::from_be_bytes([buf[20], buf[21], buf[22], buf[23]]),
    }
}

/// Serialize one RTCP packet (header + body).
pub fn serialize(pkt: &RtcpPacket) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match pkt {
        RtcpPacket::Sr(sr) => {
            let body_len = 24 + sr.reports.len() * 24;
            push_header(&mut out, sr.reports.len() as u8, PT_SR, body_len);
            out.extend_from_slice(&sr.ssrc.to_be_bytes());
            out.extend_from_slice(&sr.ntp_sec.to_be_bytes());
            out.extend_from_slice(&sr.ntp_frac.to_be_bytes());
            out.extend_from_slice(&sr.rtp_ts.to_be_bytes());
            out.extend_from_slice(&sr.packet_count.to_be_bytes());
            out.extend_from_slice(&sr.octet_count.to_be_bytes());
            for b in &sr.reports {
                push_report_block(&mut out, b);
            }
        }
        RtcpPacket::Rr(rr) => {
            let body_len = 4 + rr.reports.len() * 24;
            push_header(&mut out, rr.reports.len() as u8, PT_RR, body_len);
            out.extend_from_slice(&rr.ssrc.to_be_bytes());
            for b in &rr.reports {
                push_report_block(&mut out, b);
            }
        }
        RtcpPacket::Sdes(sdes) => {
            let mut body = Vec::new();
            for (ssrc, cname) in &sdes.chunks {
                body.extend_from_slice(&ssrc.to_be_bytes());
                body.push(1); // CNAME item type
                body.push(cname.len().min(255) as u8);
                body.extend_from_slice(&cname.as_bytes()[..cname.len().min(255)]);
                body.push(0); // end of items
                while body.len() % 4 != 0 {
                    body.push(0);
                }
            }
            push_header(&mut out, sdes.chunks.len() as u8, PT_SDES, body.len());
            out.extend_from_slice(&body);
        }
        RtcpPacket::Bye(bye) => {
            let body_len = bye.ssrcs.len() * 4;
            push_header(&mut out, bye.ssrcs.len() as u8, PT_BYE, body_len);
            for s in &bye.ssrcs {
                out.extend_from_slice(&s.to_be_bytes());
            }
        }
        RtcpPacket::Nack(nack) => {
            let body_len = 8 + nack.entries.len() * 4;
            push_header(&mut out, 1, PT_RTPFB, body_len);
            out.extend_from_slice(&nack.sender_ssrc.to_be_bytes());
            out.extend_from_slice(&nack.media_ssrc.to_be_bytes());
            for (pid, blp) in &nack.entries {
                out.extend_from_slice(&pid.to_be_bytes());
                out.extend_from_slice(&blp.to_be_bytes());
            }
        }
        RtcpPacket::Pli(pli) => {
            push_header(&mut out, 1, PT_PSFB, 8);
            out.extend_from_slice(&pli.sender_ssrc.to_be_bytes());
            out.extend_from_slice(&pli.media_ssrc.to_be_bytes());
        }
        RtcpPacket::Remb(remb) => {
            let body_len = 8 + 8 + remb.ssrcs.len() * 4;
            push_header(&mut out, 15, PT_PSFB, body_len);
            out.extend_from_slice(&remb.sender_ssrc.to_be_bytes());
            out.extend_from_slice(&0u32.to_be_bytes()); // media ssrc = 0 per spec
            out.extend_from_slice(b"REMB");
            // 8-bit ssrc count, 6-bit exponent, 18-bit mantissa.
            let (exp, mantissa) = encode_remb_bitrate(remb.bitrate_bps);
            out.push(remb.ssrcs.len() as u8);
            let word: u32 = ((exp as u32) << 18) | mantissa;
            out.extend_from_slice(&word.to_be_bytes()[1..4]);
            for s in &remb.ssrcs {
                out.extend_from_slice(&s.to_be_bytes());
            }
        }
    }
    out
}

/// Encode a bitrate as REMB's 6-bit exponent / 18-bit mantissa.
fn encode_remb_bitrate(bps: u64) -> (u8, u32) {
    let mut exp = 0u8;
    let mut mantissa = bps;
    while mantissa >= (1 << 18) {
        mantissa >>= 1;
        exp += 1;
        if exp >= 63 {
            return (63, (1 << 18) - 1);
        }
    }
    (exp, mantissa as u32)
}

/// Parse a single RTCP packet starting at `buf[0]`. Returns the packet and
/// its total encoded length.
pub fn parse_one(buf: &[u8]) -> Result<(RtcpPacket, usize), ProtoError> {
    need(buf, 4)?;
    if buf[0] >> 6 != 2 {
        return Err(ProtoError::BadMagic);
    }
    let count_or_fmt = buf[0] & 0x1F;
    let pt = buf[1];
    let words = u16::from_be_bytes([buf[2], buf[3]]) as usize;
    let total = 4 + words * 4;
    need(buf, total)?;
    let body = &buf[4..total];

    let pkt = match pt {
        PT_SR => {
            need(body, 24)?;
            let n = count_or_fmt as usize;
            need(body, 24 + n * 24)?;
            let mut reports = Vec::with_capacity(n);
            for i in 0..n {
                reports.push(parse_report_block(&body[24 + i * 24..]));
            }
            RtcpPacket::Sr(SenderReport {
                ssrc: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                ntp_sec: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                ntp_frac: u32::from_be_bytes([body[8], body[9], body[10], body[11]]),
                rtp_ts: u32::from_be_bytes([body[12], body[13], body[14], body[15]]),
                packet_count: u32::from_be_bytes([body[16], body[17], body[18], body[19]]),
                octet_count: u32::from_be_bytes([body[20], body[21], body[22], body[23]]),
                reports,
            })
        }
        PT_RR => {
            need(body, 4)?;
            let n = count_or_fmt as usize;
            need(body, 4 + n * 24)?;
            let mut reports = Vec::with_capacity(n);
            for i in 0..n {
                reports.push(parse_report_block(&body[4 + i * 24..]));
            }
            RtcpPacket::Rr(ReceiverReport {
                ssrc: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                reports,
            })
        }
        PT_SDES => {
            let mut chunks = Vec::new();
            let mut rest = body;
            for _ in 0..count_or_fmt {
                need(rest, 4)?;
                let ssrc = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
                rest = &rest[4..];
                let mut cname = String::new();
                // Items until a zero terminator.
                loop {
                    need(rest, 1)?;
                    let item = rest[0];
                    rest = &rest[1..];
                    if item == 0 {
                        break;
                    }
                    need(rest, 1)?;
                    let len = rest[0] as usize;
                    need(&rest[1..], len)?;
                    if item == 1 {
                        cname = String::from_utf8_lossy(&rest[1..1 + len]).into_owned();
                    }
                    rest = &rest[1 + len..];
                }
                // Skip pad to 32-bit boundary.
                let consumed = body.len() - rest.len();
                let pad = (4 - consumed % 4) % 4;
                need(rest, pad)?;
                rest = &rest[pad..];
                chunks.push((ssrc, cname));
            }
            RtcpPacket::Sdes(Sdes { chunks })
        }
        PT_BYE => {
            let n = count_or_fmt as usize;
            need(body, n * 4)?;
            let ssrcs = (0..n)
                .map(|i| {
                    u32::from_be_bytes([
                        body[i * 4],
                        body[i * 4 + 1],
                        body[i * 4 + 2],
                        body[i * 4 + 3],
                    ])
                })
                .collect();
            RtcpPacket::Bye(Bye { ssrcs })
        }
        PT_RTPFB => {
            if count_or_fmt != 1 {
                return Err(ProtoError::Unsupported("RTPFB format"));
            }
            need(body, 8)?;
            let sender_ssrc = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
            let media_ssrc = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
            let mut entries = Vec::new();
            let mut rest = &body[8..];
            while rest.len() >= 4 {
                entries.push((
                    u16::from_be_bytes([rest[0], rest[1]]),
                    u16::from_be_bytes([rest[2], rest[3]]),
                ));
                rest = &rest[4..];
            }
            RtcpPacket::Nack(Nack {
                sender_ssrc,
                media_ssrc,
                entries,
            })
        }
        PT_PSFB => match count_or_fmt {
            1 => {
                need(body, 8)?;
                RtcpPacket::Pli(Pli {
                    sender_ssrc: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                    media_ssrc: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                })
            }
            15 => {
                need(body, 16)?;
                if &body[8..12] != b"REMB" {
                    return Err(ProtoError::Malformed("ALFB without REMB magic"));
                }
                let sender_ssrc = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
                let num = body[12] as usize;
                let exp = (body[13] >> 2) as u32;
                let mantissa =
                    (((body[13] & 0x03) as u32) << 16) | ((body[14] as u32) << 8) | body[15] as u32;
                let bitrate_bps = (mantissa as u64) << exp;
                need(body, 16 + num * 4)?;
                let ssrcs = (0..num)
                    .map(|i| {
                        let o = 16 + i * 4;
                        u32::from_be_bytes([body[o], body[o + 1], body[o + 2], body[o + 3]])
                    })
                    .collect();
                RtcpPacket::Remb(Remb {
                    sender_ssrc,
                    bitrate_bps,
                    ssrcs,
                })
            }
            _ => return Err(ProtoError::Unsupported("PSFB format")),
        },
        _ => return Err(ProtoError::Unsupported("RTCP packet type")),
    };
    Ok((pkt, total))
}

/// Parse a compound RTCP datagram into its constituent packets.
pub fn parse_compound(buf: &[u8]) -> Result<Vec<RtcpPacket>, ProtoError> {
    let mut out = Vec::new();
    let mut rest = buf;
    while !rest.is_empty() {
        let (pkt, used) = parse_one(rest)?;
        out.push(pkt);
        rest = &rest[used..];
    }
    Ok(out)
}

/// Serialize packets back-to-back into one compound datagram.
pub fn serialize_compound(pkts: &[RtcpPacket]) -> Vec<u8> {
    let mut out = Vec::new();
    for p in pkts {
        out.extend_from_slice(&serialize(p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> ReportBlock {
        ReportBlock {
            ssrc: 0x1111,
            fraction_lost: 12,
            cumulative_lost: 345,
            highest_seq: 0x0001_0042,
            jitter: 77,
            lsr: 0xAABBCCDD,
            dlsr: 0x00010000,
        }
    }

    #[test]
    fn sr_round_trip() {
        let sr = RtcpPacket::Sr(SenderReport {
            ssrc: 42,
            ntp_sec: 100,
            ntp_frac: 200,
            rtp_ts: 300,
            packet_count: 400,
            octet_count: 500,
            reports: vec![block(), block()],
        });
        let bytes = serialize(&sr);
        let (parsed, used) = parse_one(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(parsed, sr);
    }

    #[test]
    fn rr_round_trip() {
        let rr = RtcpPacket::Rr(ReceiverReport {
            ssrc: 7,
            reports: vec![block()],
        });
        assert_eq!(parse_one(&serialize(&rr)).unwrap().0, rr);
    }

    #[test]
    fn rr_empty_round_trip() {
        let rr = RtcpPacket::Rr(ReceiverReport {
            ssrc: 9,
            reports: vec![],
        });
        assert_eq!(parse_one(&serialize(&rr)).unwrap().0, rr);
    }

    #[test]
    fn sdes_round_trip() {
        let sdes = RtcpPacket::Sdes(Sdes {
            chunks: vec![(1, "alice@example".into()), (2, "bob".into())],
        });
        assert_eq!(parse_one(&serialize(&sdes)).unwrap().0, sdes);
    }

    #[test]
    fn bye_round_trip() {
        let bye = RtcpPacket::Bye(Bye {
            ssrcs: vec![5, 6, 7],
        });
        assert_eq!(parse_one(&serialize(&bye)).unwrap().0, bye);
    }

    #[test]
    fn nack_round_trip_and_expansion() {
        let nack = Nack::from_lost_sequences(1, 2, &[100, 101, 103, 150]);
        assert_eq!(nack.entries.len(), 2);
        assert_eq!(nack.entries[0], (100, 0b0000_0000_0000_0101));
        assert_eq!(nack.entries[1], (150, 0));
        let expanded = nack.lost_sequences();
        assert_eq!(expanded, vec![100, 101, 103, 150]);
        let pkt = RtcpPacket::Nack(nack);
        assert_eq!(parse_one(&serialize(&pkt)).unwrap().0, pkt);
    }

    #[test]
    fn nack_wraparound_sequences() {
        let nack = Nack::from_lost_sequences(1, 2, &[65534, 65535, 0, 1]);
        let expanded = nack.lost_sequences();
        assert_eq!(expanded, vec![65534, 65535, 0, 1]);
    }

    #[test]
    fn pli_round_trip() {
        let pli = RtcpPacket::Pli(Pli {
            sender_ssrc: 3,
            media_ssrc: 4,
        });
        assert_eq!(parse_one(&serialize(&pli)).unwrap().0, pli);
    }

    #[test]
    fn remb_round_trip_exact_when_representable() {
        let remb = RtcpPacket::Remb(Remb {
            sender_ssrc: 10,
            bitrate_bps: 250_000,
            ssrcs: vec![0xAA, 0xBB],
        });
        assert_eq!(parse_one(&serialize(&remb)).unwrap().0, remb);
    }

    #[test]
    fn remb_large_bitrate_rounds_down() {
        // 10 Gbit/s needs the exponent; mantissa truncation loses low bits.
        let remb = Remb {
            sender_ssrc: 1,
            bitrate_bps: 10_000_000_001,
            ssrcs: vec![],
        };
        let bytes = serialize(&RtcpPacket::Remb(remb.clone()));
        let (parsed, _) = parse_one(&bytes).unwrap();
        if let RtcpPacket::Remb(r) = parsed {
            let err =
                (r.bitrate_bps as f64 - remb.bitrate_bps as f64).abs() / remb.bitrate_bps as f64;
            assert!(err < 1e-4, "relative error {err}");
        } else {
            panic!("wrong packet type");
        }
    }

    #[test]
    fn compound_round_trip() {
        let pkts = vec![
            RtcpPacket::Rr(ReceiverReport {
                ssrc: 1,
                reports: vec![block()],
            }),
            RtcpPacket::Remb(Remb {
                sender_ssrc: 1,
                bitrate_bps: 1_500_000,
                ssrcs: vec![2],
            }),
            RtcpPacket::Sdes(Sdes {
                chunks: vec![(1, "x".into())],
            }),
        ];
        let bytes = serialize_compound(&pkts);
        assert_eq!(parse_compound(&bytes).unwrap(), pkts);
    }

    #[test]
    fn rejects_bad_version_and_truncation() {
        let ok = serialize(&RtcpPacket::Pli(Pli {
            sender_ssrc: 1,
            media_ssrc: 2,
        }));
        let mut bad = ok.clone();
        bad[0] = 0x00;
        assert_eq!(parse_one(&bad), Err(ProtoError::BadMagic));
        assert!(matches!(
            parse_one(&ok[..6]),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_unknown_types() {
        // APP (204) unsupported.
        let buf = [0x80, 204, 0, 0];
        assert_eq!(
            parse_one(&buf),
            Err(ProtoError::Unsupported("RTCP packet type"))
        );
        // PSFB fmt 3 unsupported.
        let buf = [0x83, 206, 0, 2, 0, 0, 0, 1, 0, 0, 0, 2];
        assert_eq!(parse_one(&buf), Err(ProtoError::Unsupported("PSFB format")));
    }

    #[test]
    fn remb_encode_bitrate_edges() {
        assert_eq!(encode_remb_bitrate(0), (0, 0));
        assert_eq!(encode_remb_bitrate(1), (0, 1));
        assert_eq!(encode_remb_bitrate((1 << 18) - 1), (0, (1 << 18) - 1));
        let (exp, mant) = encode_remb_bitrate(1 << 18);
        assert_eq!((mant as u64) << exp, 1 << 18);
        // u64::MAX needs a 46-bit shift to fit the 18-bit mantissa.
        let (exp, mant) = encode_remb_bitrate(u64::MAX);
        assert_eq!(exp, 46);
        assert_eq!(mant, (1 << 18) - 1);
        assert!((mant as u64).checked_shl(exp as u32).is_some());
    }
}
