//! Typed parse errors.

use std::fmt;

/// Errors produced by the wire-format parsers. Parsers never panic on
/// malformed input; they return one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Input shorter than the fixed header of the protocol.
    Truncated {
        /// How many bytes were needed.
        needed: usize,
        /// How many were available.
        got: usize,
    },
    /// A version/magic field did not match the protocol.
    BadMagic,
    /// A length field points outside the buffer.
    BadLength,
    /// A field held a value the parser does not support.
    Unsupported(&'static str),
    /// The packet is syntactically valid but semantically inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { needed, got } => {
                write!(f, "truncated packet: needed {needed} bytes, got {got}")
            }
            ProtoError::BadMagic => write!(f, "bad version/magic field"),
            ProtoError::BadLength => write!(f, "length field exceeds buffer"),
            ProtoError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ProtoError::Malformed(what) => write!(f, "malformed: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Require at least `needed` bytes in `buf`.
pub(crate) fn need(buf: &[u8], needed: usize) -> Result<(), ProtoError> {
    if buf.len() < needed {
        Err(ProtoError::Truncated {
            needed,
            got: buf.len(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ProtoError::Truncated { needed: 12, got: 3 }.to_string(),
            "truncated packet: needed 12 bytes, got 3"
        );
        assert_eq!(ProtoError::BadMagic.to_string(), "bad version/magic field");
        assert_eq!(
            ProtoError::BadLength.to_string(),
            "length field exceeds buffer"
        );
        assert_eq!(ProtoError::Unsupported("x").to_string(), "unsupported: x");
        assert_eq!(ProtoError::Malformed("y").to_string(), "malformed: y");
    }

    #[test]
    fn need_checks_bounds() {
        assert!(need(&[0u8; 4], 4).is_ok());
        assert_eq!(
            need(&[0u8; 3], 4),
            Err(ProtoError::Truncated { needed: 4, got: 3 })
        );
    }
}
