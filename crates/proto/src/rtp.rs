//! RTP (RFC 3550) with RFC 8285 general-purpose header extensions.
//!
//! Scallop's data plane treats RTP packets as the unit of work: it
//! replicates them, selectively drops them by SVC layer, and rewrites
//! sequence numbers in flight (§6). This module provides:
//!
//! * [`RtpPacket`] — an owned parse/serialize representation,
//! * [`RtpView`] — a zero-copy accessor used on the simulated switch's hot
//!   path, plus in-place mutators ([`set_sequence_number`],
//!   [`set_ssrc`]) mirroring what the egress pipeline's PHV rewrites do.

use crate::error::{need, ProtoError};
use bytes::Bytes;

/// RTP protocol version (always 2).
pub const RTP_VERSION: u8 = 2;

/// RFC 8285 profile value for one-byte extension headers.
pub const EXT_PROFILE_ONE_BYTE: u16 = 0xBEDE;
/// RFC 8285 profile value for two-byte extension headers.
pub const EXT_PROFILE_TWO_BYTE: u16 = 0x1000;

/// Minimum RTP header size (no CSRC, no extension).
pub const MIN_HEADER_LEN: usize = 12;

/// A single RFC 8285 extension element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionElement {
    /// Extension id (1–14 for one-byte profile, 1–255 for two-byte).
    pub id: u8,
    /// Raw element payload.
    pub data: Vec<u8>,
}

/// Which RFC 8285 wire encoding the extension block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtensionProfile {
    /// `0xBEDE`: 4-bit id, 4-bit (length − 1).
    #[default]
    OneByte,
    /// `0x1000`: 8-bit id, 8-bit length.
    TwoByte,
}

/// An owned RTP packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtpPacket {
    /// Marker bit (end-of-frame for video payloads).
    pub marker: bool,
    /// Payload type (7 bits).
    pub payload_type: u8,
    /// Sequence number.
    pub sequence_number: u16,
    /// Media timestamp.
    pub timestamp: u32,
    /// Synchronization source.
    pub ssrc: u32,
    /// Contributing sources (up to 15).
    pub csrc: Vec<u32>,
    /// Extension encoding to use when serializing (when `extensions` is
    /// non-empty).
    pub extension_profile: ExtensionProfile,
    /// RFC 8285 extension elements.
    pub extensions: Vec<ExtensionElement>,
    /// Media payload.
    pub payload: Bytes,
}

impl RtpPacket {
    /// A packet with sensible defaults for the given identity fields.
    pub fn new(payload_type: u8, sequence_number: u16, timestamp: u32, ssrc: u32) -> Self {
        RtpPacket {
            marker: false,
            payload_type,
            sequence_number,
            timestamp,
            ssrc,
            csrc: Vec::new(),
            extension_profile: ExtensionProfile::OneByte,
            extensions: Vec::new(),
            payload: Bytes::new(),
        }
    }

    /// Find an extension element by id.
    pub fn extension(&self, id: u8) -> Option<&[u8]> {
        self.extensions
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.data.as_slice())
    }

    /// Parse from a UDP payload.
    pub fn parse(buf: &[u8]) -> Result<RtpPacket, ProtoError> {
        let view = RtpView::new(buf)?;
        let mut extensions = Vec::new();
        let mut profile = ExtensionProfile::OneByte;
        if let Some((prof, ext_body)) = view.extension_block()? {
            profile = prof;
            extensions = parse_extension_elements(prof, ext_body)?;
        }
        Ok(RtpPacket {
            marker: view.marker(),
            payload_type: view.payload_type(),
            sequence_number: view.sequence_number(),
            timestamp: view.timestamp(),
            ssrc: view.ssrc(),
            csrc: view.csrc(),
            extension_profile: profile,
            extensions,
            payload: Bytes::copy_from_slice(view.payload()?),
        })
    }

    /// Serialize to bytes.
    pub fn serialize(&self) -> Vec<u8> {
        let has_ext = !self.extensions.is_empty();
        let mut out = Vec::with_capacity(MIN_HEADER_LEN + 16 + self.payload.len());
        let v_p_x_cc: u8 =
            (RTP_VERSION << 6) | ((has_ext as u8) << 4) | (self.csrc.len().min(15) as u8);
        out.push(v_p_x_cc);
        out.push(((self.marker as u8) << 7) | (self.payload_type & 0x7F));
        out.extend_from_slice(&self.sequence_number.to_be_bytes());
        out.extend_from_slice(&self.timestamp.to_be_bytes());
        out.extend_from_slice(&self.ssrc.to_be_bytes());
        for c in self.csrc.iter().take(15) {
            out.extend_from_slice(&c.to_be_bytes());
        }
        if has_ext {
            let profile_val = match self.extension_profile {
                ExtensionProfile::OneByte => EXT_PROFILE_ONE_BYTE,
                ExtensionProfile::TwoByte => EXT_PROFILE_TWO_BYTE,
            };
            let body = serialize_extension_elements(self.extension_profile, &self.extensions);
            debug_assert_eq!(body.len() % 4, 0);
            out.extend_from_slice(&profile_val.to_be_bytes());
            out.extend_from_slice(&((body.len() / 4) as u16).to_be_bytes());
            out.extend_from_slice(&body);
        }
        out.extend_from_slice(&self.payload);
        out
    }
}

fn parse_extension_elements(
    profile: ExtensionProfile,
    mut body: &[u8],
) -> Result<Vec<ExtensionElement>, ProtoError> {
    let mut out = Vec::new();
    match profile {
        ExtensionProfile::OneByte => {
            while let Some((&first, rest)) = body.split_first() {
                if first == 0 {
                    body = rest; // padding
                    continue;
                }
                let id = first >> 4;
                let len = (first & 0x0F) as usize + 1;
                if id == 15 {
                    // id 15 terminates parsing per RFC 8285 §4.2.
                    break;
                }
                need(rest, len)?;
                out.push(ExtensionElement {
                    id,
                    data: rest[..len].to_vec(),
                });
                body = &rest[len..];
            }
        }
        ExtensionProfile::TwoByte => {
            while let Some((&first, rest)) = body.split_first() {
                if first == 0 {
                    body = rest; // padding
                    continue;
                }
                need(rest, 1)?;
                let len = rest[0] as usize;
                need(&rest[1..], len)?;
                out.push(ExtensionElement {
                    id: first,
                    data: rest[1..1 + len].to_vec(),
                });
                body = &rest[1 + len..];
            }
        }
    }
    Ok(out)
}

fn serialize_extension_elements(
    profile: ExtensionProfile,
    elements: &[ExtensionElement],
) -> Vec<u8> {
    let mut body = Vec::new();
    for e in elements {
        match profile {
            ExtensionProfile::OneByte => {
                debug_assert!((1..=14).contains(&e.id), "one-byte ext id out of range");
                debug_assert!(
                    (1..=16).contains(&e.data.len()),
                    "one-byte ext length out of range"
                );
                body.push((e.id << 4) | ((e.data.len() - 1) as u8 & 0x0F));
                body.extend_from_slice(&e.data);
            }
            ExtensionProfile::TwoByte => {
                debug_assert!(e.id != 0);
                debug_assert!(e.data.len() <= 255);
                body.push(e.id);
                body.push(e.data.len() as u8);
                body.extend_from_slice(&e.data);
            }
        }
    }
    while body.len() % 4 != 0 {
        body.push(0);
    }
    body
}

/// Zero-copy view over an RTP packet.
///
/// This is the representation the simulated data plane uses: header fields
/// are read directly from the wire without allocation, like PHV extraction
/// in the real pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RtpView<'a> {
    buf: &'a [u8],
}

impl<'a> RtpView<'a> {
    /// Validate the fixed header and wrap the buffer.
    pub fn new(buf: &'a [u8]) -> Result<Self, ProtoError> {
        need(buf, MIN_HEADER_LEN)?;
        if buf[0] >> 6 != RTP_VERSION {
            return Err(ProtoError::BadMagic);
        }
        Ok(RtpView { buf })
    }

    /// Number of CSRC entries.
    pub fn csrc_count(&self) -> usize {
        (self.buf[0] & 0x0F) as usize
    }

    /// Extension bit.
    pub fn has_extension(&self) -> bool {
        self.buf[0] & 0x10 != 0
    }

    /// Padding bit.
    pub fn has_padding(&self) -> bool {
        self.buf[0] & 0x20 != 0
    }

    /// Marker bit.
    pub fn marker(&self) -> bool {
        self.buf[1] & 0x80 != 0
    }

    /// Payload type.
    pub fn payload_type(&self) -> u8 {
        self.buf[1] & 0x7F
    }

    /// Sequence number.
    pub fn sequence_number(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Media timestamp.
    pub fn timestamp(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Synchronization source.
    pub fn ssrc(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// CSRC list (allocates only for the list itself).
    pub fn csrc(&self) -> Vec<u32> {
        let n = self.csrc_count().min((self.buf.len() - MIN_HEADER_LEN) / 4);
        (0..n)
            .map(|i| {
                let o = MIN_HEADER_LEN + i * 4;
                u32::from_be_bytes([
                    self.buf[o],
                    self.buf[o + 1],
                    self.buf[o + 2],
                    self.buf[o + 3],
                ])
            })
            .collect()
    }

    /// Offset of the extension block header (if the X bit is set).
    fn ext_header_offset(&self) -> usize {
        MIN_HEADER_LEN + self.csrc_count() * 4
    }

    /// The extension profile and body, if present.
    pub fn extension_block(&self) -> Result<Option<(ExtensionProfile, &'a [u8])>, ProtoError> {
        if !self.has_extension() {
            return Ok(None);
        }
        let o = self.ext_header_offset();
        need(self.buf, o + 4)?;
        let profile = u16::from_be_bytes([self.buf[o], self.buf[o + 1]]);
        let words = u16::from_be_bytes([self.buf[o + 2], self.buf[o + 3]]) as usize;
        let body_start = o + 4;
        let body_end = body_start + words * 4;
        if body_end > self.buf.len() {
            return Err(ProtoError::BadLength);
        }
        let prof = match profile {
            EXT_PROFILE_ONE_BYTE => ExtensionProfile::OneByte,
            p if p & 0xFFF0 == EXT_PROFILE_TWO_BYTE => ExtensionProfile::TwoByte,
            _ => return Err(ProtoError::Unsupported("extension profile")),
        };
        Ok(Some((prof, &self.buf[body_start..body_end])))
    }

    /// Offset where the media payload starts.
    pub fn payload_offset(&self) -> Result<usize, ProtoError> {
        let mut o = self.ext_header_offset();
        if self.has_extension() {
            need(self.buf, o + 4)?;
            let words = u16::from_be_bytes([self.buf[o + 2], self.buf[o + 3]]) as usize;
            o += 4 + words * 4;
            if o > self.buf.len() {
                return Err(ProtoError::BadLength);
            }
        } else {
            need(self.buf, o)?;
        }
        Ok(o)
    }

    /// The media payload (after header, CSRC, and extensions; padding, if
    /// any, is not stripped — we never emit padded packets).
    pub fn payload(&self) -> Result<&'a [u8], ProtoError> {
        Ok(&self.buf[self.payload_offset()?..])
    }

    /// Look up an extension element by id without allocating.
    pub fn find_extension(&self, id: u8) -> Result<Option<&'a [u8]>, ProtoError> {
        let Some((prof, mut body)) = self.extension_block()? else {
            return Ok(None);
        };
        match prof {
            ExtensionProfile::OneByte => {
                while let Some((&first, rest)) = body.split_first() {
                    if first == 0 {
                        body = rest;
                        continue;
                    }
                    let eid = first >> 4;
                    if eid == 15 {
                        break;
                    }
                    let len = (first & 0x0F) as usize + 1;
                    if rest.len() < len {
                        return Err(ProtoError::BadLength);
                    }
                    if eid == id {
                        return Ok(Some(&rest[..len]));
                    }
                    body = &rest[len..];
                }
            }
            ExtensionProfile::TwoByte => {
                while let Some((&first, rest)) = body.split_first() {
                    if first == 0 {
                        body = rest;
                        continue;
                    }
                    if rest.is_empty() {
                        return Err(ProtoError::BadLength);
                    }
                    let len = rest[0] as usize;
                    if rest.len() < 1 + len {
                        return Err(ProtoError::BadLength);
                    }
                    if first == id {
                        return Ok(Some(&rest[1..1 + len]));
                    }
                    body = &rest[1 + len..];
                }
            }
        }
        Ok(None)
    }
}

/// Rewrite the sequence number in place — the egress-pipeline operation of
/// §6.2 (S-LM / S-LR apply their computed offset with exactly this write).
pub fn set_sequence_number(buf: &mut [u8], seq: u16) -> Result<(), ProtoError> {
    need(buf, MIN_HEADER_LEN)?;
    buf[2..4].copy_from_slice(&seq.to_be_bytes());
    Ok(())
}

/// Rewrite the SSRC in place.
pub fn set_ssrc(buf: &mut [u8], ssrc: u32) -> Result<(), ProtoError> {
    need(buf, MIN_HEADER_LEN)?;
    buf[8..12].copy_from_slice(&ssrc.to_be_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RtpPacket {
        let mut p = RtpPacket::new(96, 1234, 0xDEADBEEF, 0xCAFEBABE);
        p.marker = true;
        p.payload = Bytes::from_static(b"hello media payload");
        p
    }

    #[test]
    fn round_trip_plain() {
        let p = sample();
        let bytes = p.serialize();
        let q = RtpPacket::parse(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn round_trip_with_csrc() {
        let mut p = sample();
        p.csrc = vec![1, 2, 3];
        let q = RtpPacket::parse(&p.serialize()).unwrap();
        assert_eq!(q.csrc, vec![1, 2, 3]);
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn round_trip_one_byte_extension() {
        let mut p = sample();
        p.extensions.push(ExtensionElement {
            id: 5,
            data: vec![0xAA, 0xBB, 0xCC],
        });
        p.extensions.push(ExtensionElement {
            id: 7,
            data: vec![0x01],
        });
        let bytes = p.serialize();
        let q = RtpPacket::parse(&bytes).unwrap();
        assert_eq!(q.extensions, p.extensions);
        assert_eq!(q.extension(5), Some(&[0xAA, 0xBB, 0xCC][..]));
        assert_eq!(q.extension(7), Some(&[0x01][..]));
        assert_eq!(q.extension(9), None);
    }

    #[test]
    fn round_trip_two_byte_extension() {
        let mut p = sample();
        p.extension_profile = ExtensionProfile::TwoByte;
        p.extensions.push(ExtensionElement {
            id: 42,
            data: vec![9; 20], // too long for one-byte profile
        });
        let bytes = p.serialize();
        let q = RtpPacket::parse(&bytes).unwrap();
        assert_eq!(q.extension_profile, ExtensionProfile::TwoByte);
        assert_eq!(q.extensions, p.extensions);
    }

    #[test]
    fn view_reads_fields_without_alloc() {
        let p = sample();
        let bytes = p.serialize();
        let v = RtpView::new(&bytes).unwrap();
        assert_eq!(v.payload_type(), 96);
        assert!(v.marker());
        assert_eq!(v.sequence_number(), 1234);
        assert_eq!(v.timestamp(), 0xDEADBEEF);
        assert_eq!(v.ssrc(), 0xCAFEBABE);
        assert_eq!(v.payload().unwrap(), b"hello media payload");
    }

    #[test]
    fn view_find_extension() {
        let mut p = sample();
        p.extensions.push(ExtensionElement {
            id: 3,
            data: vec![1, 2, 3, 4],
        });
        let bytes = p.serialize();
        let v = RtpView::new(&bytes).unwrap();
        assert_eq!(v.find_extension(3).unwrap(), Some(&[1, 2, 3, 4][..]));
        assert_eq!(v.find_extension(4).unwrap(), None);
    }

    #[test]
    fn in_place_rewrites() {
        let p = sample();
        let mut bytes = p.serialize();
        set_sequence_number(&mut bytes, 9999).unwrap();
        set_ssrc(&mut bytes, 0x11223344).unwrap();
        let q = RtpPacket::parse(&bytes).unwrap();
        assert_eq!(q.sequence_number, 9999);
        assert_eq!(q.ssrc, 0x11223344);
        // Everything else untouched.
        assert_eq!(q.timestamp, p.timestamp);
        assert_eq!(q.payload, p.payload);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().serialize();
        bytes[0] = 0x00; // version 0
        assert_eq!(RtpPacket::parse(&bytes), Err(ProtoError::BadMagic));
    }

    #[test]
    fn rejects_truncated() {
        let bytes = sample().serialize();
        assert!(matches!(
            RtpPacket::parse(&bytes[..8]),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_overlong_extension_length() {
        let mut p = sample();
        p.extensions.push(ExtensionElement {
            id: 1,
            data: vec![0; 4],
        });
        let mut bytes = p.serialize();
        // Corrupt the extension word count to exceed the buffer.
        let o = MIN_HEADER_LEN;
        bytes[o + 2] = 0xFF;
        bytes[o + 3] = 0xFF;
        assert_eq!(RtpPacket::parse(&bytes), Err(ProtoError::BadLength));
    }

    #[test]
    fn one_byte_id_15_terminates() {
        // Hand-craft an extension body where id=15 appears: parsing stops.
        let mut p = sample();
        p.extensions.push(ExtensionElement {
            id: 2,
            data: vec![0x55],
        });
        let mut bytes = p.serialize();
        // The element header byte is at ext body start; overwrite a padding
        // byte after the element with id-15 marker followed by junk.
        let body_start = MIN_HEADER_LEN + 4;
        // element occupies 2 bytes; the remaining 2 are padding; set first
        // padding byte to 0xF0 (id 15, len 1).
        bytes[body_start + 2] = 0xF0;
        let q = RtpPacket::parse(&bytes).unwrap();
        assert_eq!(q.extensions.len(), 1);
        assert_eq!(q.extensions[0].id, 2);
    }
}
