//! Session Description Protocol (offer/answer subset for WebRTC).
//!
//! Scallop's controller acts as the signaling server: it intercepts SDP
//! offers/answers exchanged between participants and rewrites the ICE
//! connection candidates so the switch becomes each participant's sole
//! apparent peer (§5.1 "Controlling Signaling to Create Proxy Topology").
//! This module implements exactly what that requires: parse, candidate
//! inspection/rewriting, SSRC discovery, and re-serialization.
//!
//! Omitted: full RFC 4566 grammar (bandwidth lines, repeat times, crypto
//! attributes) — unknown lines are preserved verbatim so rewriting is
//! lossless for everything this reproduction does not interpret.

use crate::error::ProtoError;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// Media section kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaKind {
    /// `m=audio`
    Audio,
    /// `m=video`
    Video,
}

impl MediaKind {
    fn as_str(&self) -> &'static str {
        match self {
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
        }
    }
}

/// One ICE candidate (`a=candidate:` line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Foundation token.
    pub foundation: String,
    /// Component id (1 = RTP; WebRTC bundles RTCP).
    pub component: u8,
    /// Transport ("udp").
    pub transport: String,
    /// Candidate priority.
    pub priority: u32,
    /// Advertised address.
    pub ip: Ipv4Addr,
    /// Advertised port.
    pub port: u16,
    /// Candidate type ("host", "srflx", ...).
    pub typ: String,
}

impl Candidate {
    /// A host candidate with a standard priority.
    pub fn host(ip: Ipv4Addr, port: u16) -> Candidate {
        Candidate {
            foundation: "1".into(),
            component: 1,
            transport: "udp".into(),
            priority: 2_130_706_431,
            ip,
            port,
            typ: "host".into(),
        }
    }

    fn to_attr_value(&self) -> String {
        format!(
            "{} {} {} {} {} {} typ {}",
            self.foundation,
            self.component,
            self.transport,
            self.priority,
            self.ip,
            self.port,
            self.typ
        )
    }

    fn parse(value: &str) -> Result<Candidate, ProtoError> {
        let parts: Vec<&str> = value.split_whitespace().collect();
        if parts.len() < 8 || parts[6] != "typ" {
            return Err(ProtoError::Malformed("candidate line"));
        }
        Ok(Candidate {
            foundation: parts[0].to_string(),
            component: parts[1]
                .parse()
                .map_err(|_| ProtoError::Malformed("candidate component"))?,
            transport: parts[2].to_string(),
            priority: parts[3]
                .parse()
                .map_err(|_| ProtoError::Malformed("candidate priority"))?,
            ip: parts[4]
                .parse()
                .map_err(|_| ProtoError::Malformed("candidate ip"))?,
            port: parts[5]
                .parse()
                .map_err(|_| ProtoError::Malformed("candidate port"))?,
            typ: parts[7].to_string(),
        })
    }
}

/// A media section (`m=` line plus its attributes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaSection {
    /// Audio or video.
    pub kind: MediaKind,
    /// Port from the `m=` line.
    pub port: u16,
    /// Transport profile (e.g. "UDP/RTP/AVPF").
    pub protocol: String,
    /// Payload type numbers offered.
    pub payload_types: Vec<u8>,
    /// ICE candidates in this section.
    pub candidates: Vec<Candidate>,
    /// SSRCs announced via `a=ssrc:`.
    pub ssrcs: Vec<u32>,
    /// `a=mid:` value, if present.
    pub mid: Option<String>,
    /// Direction attribute (`sendrecv`, `sendonly`, `recvonly`), default
    /// sendrecv.
    pub direction: String,
    /// All other `a=` lines, preserved verbatim (without the `a=`).
    pub other_attributes: Vec<String>,
}

impl MediaSection {
    /// A new section with defaults.
    pub fn new(kind: MediaKind, port: u16) -> MediaSection {
        MediaSection {
            kind,
            port,
            protocol: "UDP/RTP/AVPF".into(),
            payload_types: vec![if matches!(kind, MediaKind::Audio) {
                111
            } else {
                96
            }],
            candidates: Vec::new(),
            ssrcs: Vec::new(),
            mid: None,
            direction: "sendrecv".into(),
            other_attributes: Vec::new(),
        }
    }
}

/// A parsed session description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionDescription {
    /// `o=` username/session fields (free-form here).
    pub origin: String,
    /// `s=` session name.
    pub session_name: String,
    /// Session-level connection address (`c=`), if any.
    pub connection_ip: Option<Ipv4Addr>,
    /// Media sections.
    pub media: Vec<MediaSection>,
}

impl SessionDescription {
    /// An empty description for the given originator.
    pub fn new(origin: impl Into<String>) -> SessionDescription {
        SessionDescription {
            origin: origin.into(),
            session_name: "-".into(),
            connection_ip: None,
            media: Vec::new(),
        }
    }

    /// All candidates across all media sections.
    pub fn all_candidates(&self) -> impl Iterator<Item = &Candidate> {
        self.media.iter().flat_map(|m| m.candidates.iter())
    }

    /// All SSRCs across all media sections.
    pub fn all_ssrcs(&self) -> Vec<u32> {
        self.media.iter().flat_map(|m| m.ssrcs.clone()).collect()
    }

    /// Replace every candidate in every section with a single candidate at
    /// `ip:port` (port incremented per section) — the §5.1 rewrite that
    /// splices the SFU into the media path while appearing as the sole
    /// peer.
    pub fn rewrite_candidates(&mut self, ip: Ipv4Addr, base_port: u16) {
        for (i, m) in self.media.iter_mut().enumerate() {
            let port = base_port.wrapping_add(i as u16);
            m.candidates = vec![Candidate::host(ip, port)];
            m.port = port;
        }
    }

    /// Serialize to SDP text.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str("v=0\r\n");
        let _ = writeln!(out, "o={} 0 0 IN IP4 0.0.0.0\r", self.origin);
        let _ = writeln!(out, "s={}\r", self.session_name);
        if let Some(ip) = self.connection_ip {
            let _ = writeln!(out, "c=IN IP4 {ip}\r");
        }
        out.push_str("t=0 0\r\n");
        for m in &self.media {
            let pts: Vec<String> = m.payload_types.iter().map(|p| p.to_string()).collect();
            let _ = writeln!(
                out,
                "m={} {} {} {}\r",
                m.kind.as_str(),
                m.port,
                m.protocol,
                pts.join(" ")
            );
            if let Some(mid) = &m.mid {
                let _ = writeln!(out, "a=mid:{mid}\r");
            }
            let _ = writeln!(out, "a={}\r", m.direction);
            for c in &m.candidates {
                let _ = writeln!(out, "a=candidate:{}\r", c.to_attr_value());
            }
            for s in &m.ssrcs {
                let _ = writeln!(out, "a=ssrc:{s} cname:scallop\r");
            }
            for a in &m.other_attributes {
                let _ = writeln!(out, "a={a}\r");
            }
        }
        out
    }

    /// Parse from SDP text.
    pub fn parse(text: &str) -> Result<SessionDescription, ProtoError> {
        let mut sd = SessionDescription::new("-");
        let mut saw_v = false;
        let mut current: Option<MediaSection> = None;
        for raw in text.lines() {
            let line = raw.trim_end_matches('\r');
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ProtoError::Malformed("SDP line without '='"));
            };
            match key {
                "v" => {
                    if value != "0" {
                        return Err(ProtoError::BadMagic);
                    }
                    saw_v = true;
                }
                "o" => {
                    sd.origin = value.split_whitespace().next().unwrap_or("-").to_string();
                }
                "s" => sd.session_name = value.to_string(),
                "c" => {
                    // "IN IP4 <addr>"
                    if let Some(addr) = value.split_whitespace().nth(2) {
                        let ip = addr
                            .parse()
                            .map_err(|_| ProtoError::Malformed("connection address"))?;
                        match &mut current {
                            Some(_m) => { /* per-media c= treated as session-level here */ }
                            None => sd.connection_ip = Some(ip),
                        }
                        if sd.connection_ip.is_none() {
                            sd.connection_ip = Some(ip);
                        }
                    }
                }
                "t" => {}
                "m" => {
                    if let Some(m) = current.take() {
                        sd.media.push(m);
                    }
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() < 3 {
                        return Err(ProtoError::Malformed("m= line"));
                    }
                    let kind = match parts[0] {
                        "audio" => MediaKind::Audio,
                        "video" => MediaKind::Video,
                        _ => return Err(ProtoError::Unsupported("media kind")),
                    };
                    let port: u16 = parts[1]
                        .parse()
                        .map_err(|_| ProtoError::Malformed("m= port"))?;
                    let mut sec = MediaSection::new(kind, port);
                    sec.protocol = parts[2].to_string();
                    sec.payload_types = parts[3..].iter().filter_map(|p| p.parse().ok()).collect();
                    current = Some(sec);
                }
                "a" => {
                    let Some(m) = &mut current else {
                        continue; // session-level attribute: ignore
                    };
                    if let Some(v) = value.strip_prefix("candidate:") {
                        m.candidates.push(Candidate::parse(v)?);
                    } else if let Some(v) = value.strip_prefix("ssrc:") {
                        if let Some(ssrc) = v.split_whitespace().next() {
                            if let Ok(s) = ssrc.parse() {
                                if !m.ssrcs.contains(&s) {
                                    m.ssrcs.push(s);
                                }
                            }
                        }
                    } else if let Some(v) = value.strip_prefix("mid:") {
                        m.mid = Some(v.to_string());
                    } else if matches!(value, "sendrecv" | "sendonly" | "recvonly" | "inactive") {
                        m.direction = value.to_string();
                    } else {
                        m.other_attributes.push(value.to_string());
                    }
                }
                _ => {} // unknown line types ignored
            }
        }
        if let Some(m) = current.take() {
            sd.media.push(m);
        }
        if !saw_v {
            return Err(ProtoError::Malformed("missing v= line"));
        }
        Ok(sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionDescription {
        let mut sd = SessionDescription::new("alice");
        sd.connection_ip = Some(Ipv4Addr::new(192, 168, 0, 5));
        let mut video = MediaSection::new(MediaKind::Video, 50000);
        video.mid = Some("0".into());
        video.ssrcs = vec![0xDEAD];
        video
            .candidates
            .push(Candidate::host(Ipv4Addr::new(192, 168, 0, 5), 50000));
        let mut audio = MediaSection::new(MediaKind::Audio, 50002);
        audio.mid = Some("1".into());
        audio.ssrcs = vec![0xBEEF];
        audio
            .candidates
            .push(Candidate::host(Ipv4Addr::new(192, 168, 0, 5), 50002));
        sd.media = vec![video, audio];
        sd
    }

    #[test]
    fn round_trip() {
        let sd = sample();
        let text = sd.serialize();
        let parsed = SessionDescription::parse(&text).unwrap();
        assert_eq!(parsed.origin, "alice");
        assert_eq!(parsed.media.len(), 2);
        assert_eq!(parsed.media[0].kind, MediaKind::Video);
        assert_eq!(parsed.media[0].ssrcs, vec![0xDEAD]);
        assert_eq!(parsed.media[1].kind, MediaKind::Audio);
        assert_eq!(parsed.media[1].candidates[0].port, 50002);
        assert_eq!(parsed.connection_ip, Some(Ipv4Addr::new(192, 168, 0, 5)));
    }

    #[test]
    fn candidate_rewrite_creates_proxy_topology() {
        let mut sd = sample();
        let sfu = Ipv4Addr::new(10, 9, 8, 7);
        sd.rewrite_candidates(sfu, 6000);
        // Every section now advertises only the SFU.
        for (i, m) in sd.media.iter().enumerate() {
            assert_eq!(m.candidates.len(), 1);
            assert_eq!(m.candidates[0].ip, sfu);
            assert_eq!(m.candidates[0].port, 6000 + i as u16);
        }
        // Round-trips after rewriting.
        let parsed = SessionDescription::parse(&sd.serialize()).unwrap();
        assert!(parsed.all_candidates().all(|c| c.ip == sfu));
    }

    #[test]
    fn all_ssrcs_collects_across_sections() {
        let sd = sample();
        assert_eq!(sd.all_ssrcs(), vec![0xDEAD, 0xBEEF]);
    }

    #[test]
    fn parses_foreign_attributes_losslessly() {
        let text = "v=0\r\no=bob 0 0 IN IP4 0.0.0.0\r\ns=-\r\nt=0 0\r\n\
                    m=video 4000 UDP/RTP/AVPF 96 97\r\n\
                    a=rtpmap:96 AV1/90000\r\na=fmtp:96 profile=0\r\na=sendonly\r\n";
        let sd = SessionDescription::parse(text).unwrap();
        assert_eq!(sd.media[0].payload_types, vec![96, 97]);
        assert_eq!(sd.media[0].direction, "sendonly");
        assert!(sd.media[0]
            .other_attributes
            .contains(&"rtpmap:96 AV1/90000".to_string()));
        let out = sd.serialize();
        assert!(out.contains("a=rtpmap:96 AV1/90000"));
        assert!(out.contains("a=sendonly"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(SessionDescription::parse("nonsense").is_err());
        assert!(SessionDescription::parse("v=1\r\n").is_err());
        assert!(SessionDescription::parse("o=alice\r\n").is_err()); // no v=
        let bad_candidate = "v=0\r\nm=video 1 X 96\r\na=candidate:garbage\r\n";
        assert!(SessionDescription::parse(bad_candidate).is_err());
    }

    #[test]
    fn candidate_parse_variants() {
        let c = Candidate::parse("1 1 udp 2130706431 10.0.0.1 5000 typ host").unwrap();
        assert_eq!(c.ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c.port, 5000);
        assert_eq!(c.typ, "host");
        // srflx with trailing raddr/rport tokens still parses.
        let c = Candidate::parse("2 1 udp 1694498815 1.2.3.4 9999 typ srflx raddr 0.0.0.0 rport 0")
            .unwrap();
        assert_eq!(c.typ, "srflx");
    }
}
