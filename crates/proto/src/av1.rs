//! AV1 dependency descriptor RTP extension (SVC layer labeling).
//!
//! Scallop adapts streams by dropping packets whose AV1 *template id* maps
//! to a temporal layer above the receiver's decode target (§5.4, Fig. 9).
//! Each RTP packet carries a dependency descriptor (DD) extension element;
//! key frames additionally carry the *template dependency structure* that
//! maps template ids to layers and decode targets. The data plane parses
//! only the 3-byte mandatory fields; extended descriptors are punted to
//! the switch agent (Table 1 counts 5 such packets in 10 minutes).
//!
//! ## Wire-format fidelity
//!
//! The mandatory fields follow the AV1 RTP spec exactly:
//! `start_of_frame(1) end_of_frame(1) template_id(6) frame_number(16)`.
//! The extended part (template structures) uses a **simplified but
//! self-consistent** bit layout (documented on
//! [`DependencyDescriptor::serialize`]): the real spec's chain/fdiff
//! machinery is not needed by any experiment, only the
//! template → (spatial, temporal, per-DT DTI) mapping is, and that is
//! carried faithfully.

use crate::bits::{BitReader, BitWriter};
use crate::error::ProtoError;

/// The RFC 8285 extension id this reproduction assigns to the AV1
/// dependency descriptor (negotiated via SDP `extmap` in real WebRTC).
pub const DD_EXTENSION_ID: u8 = 12;

/// Decode-target indication for one (template, decode target) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dti {
    /// Frame is not present in this decode target.
    NotPresent = 0,
    /// Frame is present but no later frame depends on it.
    Discardable = 1,
    /// Decoding can switch to this target at this frame.
    Switch = 2,
    /// Frame is required for this decode target.
    Required = 3,
}

impl Dti {
    fn from_bits(v: u64) -> Dti {
        match v & 0x3 {
            0 => Dti::NotPresent,
            1 => Dti::Discardable,
            2 => Dti::Switch,
            _ => Dti::Required,
        }
    }
}

/// Per-template layer info within a [`TemplateStructure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateInfo {
    /// Spatial layer id (0 for the paper's L1T3 profile).
    pub spatial_id: u8,
    /// Temporal layer id (0–2 for L1T3).
    pub temporal_id: u8,
    /// One DTI per decode target.
    pub dtis: Vec<Dti>,
}

/// The template dependency structure carried on key frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateStructure {
    /// Offset added to template ids in this structure epoch (lets the
    /// encoder rotate ids across key frames, which is why the SFU must
    /// re-analyze each key frame — §5.4).
    pub template_id_offset: u8,
    /// Number of decode targets (1–32).
    pub decode_target_count: u8,
    /// Template table, indexed by `template_id - template_id_offset`.
    pub templates: Vec<TemplateInfo>,
}

impl TemplateStructure {
    /// The canonical L1T3 structure the paper evaluates (Fig. 9): one
    /// spatial layer, three temporal layers, five templates.
    /// Templates 0,1 → T0 (7.5 fps), 2 → T1 (15 fps), 3,4 → T2 (30 fps).
    /// Decode targets: DT0 = 7.5 fps, DT1 = 15 fps, DT2 = 30 fps.
    pub fn l1t3() -> TemplateStructure {
        use Dti::*;
        let t = |temporal_id: u8, dtis: [Dti; 3]| TemplateInfo {
            spatial_id: 0,
            temporal_id,
            dtis: dtis.to_vec(),
        };
        TemplateStructure {
            template_id_offset: 0,
            decode_target_count: 3,
            templates: vec![
                // Key-frame template (T0): required everywhere, switchable.
                t(0, [Switch, Switch, Switch]),
                // Steady-state T0.
                t(0, [Required, Required, Required]),
                // T1: absent from DT0.
                t(1, [NotPresent, Required, Required]),
                // T2 (two phases): absent below DT2, discardable there.
                t(2, [NotPresent, NotPresent, Discardable]),
                t(2, [NotPresent, NotPresent, Discardable]),
            ],
        }
    }

    /// Temporal layer of a template id, accounting for the id offset.
    /// Returns `None` for ids outside the structure.
    pub fn temporal_of(&self, template_id: u8) -> Option<u8> {
        let idx = (template_id as usize).checked_sub(self.template_id_offset as usize)?;
        self.templates.get(idx).map(|t| t.temporal_id)
    }

    /// Whether a template id is needed by the given decode target.
    pub fn needed_by(&self, template_id: u8, decode_target: u8) -> Option<bool> {
        let idx = (template_id as usize).checked_sub(self.template_id_offset as usize)?;
        let tpl = self.templates.get(idx)?;
        let dti = tpl.dtis.get(decode_target as usize)?;
        Some(!matches!(dti, Dti::NotPresent))
    }

    /// The highest temporal id present in any template for the decode
    /// target — i.e. the frame-rate tier the target delivers.
    pub fn max_temporal_for_target(&self, decode_target: u8) -> u8 {
        self.templates
            .iter()
            .filter(|t| {
                t.dtis
                    .get(decode_target as usize)
                    .map(|d| !matches!(d, Dti::NotPresent))
                    .unwrap_or(false)
            })
            .map(|t| t.temporal_id)
            .max()
            .unwrap_or(0)
    }
}

/// An AV1 dependency descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyDescriptor {
    /// First packet of the frame.
    pub start_of_frame: bool,
    /// Last packet of the frame.
    pub end_of_frame: bool,
    /// Frame dependency template id (6 bits).
    pub template_id: u8,
    /// Frame number (16 bits, wrapping).
    pub frame_number: u16,
    /// Template dependency structure (key frames only).
    pub structure: Option<TemplateStructure>,
    /// Bitmask of currently active decode targets (bit i = DT i).
    pub active_decode_targets: Option<u32>,
}

impl DependencyDescriptor {
    /// A minimal (non-extended) descriptor.
    pub fn mandatory(
        start_of_frame: bool,
        end_of_frame: bool,
        template_id: u8,
        frame_number: u16,
    ) -> Self {
        DependencyDescriptor {
            start_of_frame,
            end_of_frame,
            template_id,
            frame_number,
            structure: None,
            active_decode_targets: None,
        }
    }

    /// True when the descriptor carries more than the mandatory fields —
    /// the packets Scallop's data plane punts to the switch agent.
    pub fn is_extended(&self) -> bool {
        self.structure.is_some() || self.active_decode_targets.is_some()
    }

    /// Serialize. Layout:
    ///
    /// * mandatory (3 bytes): `start(1) end(1) template_id(6) frame_no(16)`
    /// * if extended — flags byte: `structure_present(1) adt_present(1)
    ///   zero(6)`, then:
    ///   * structure: `template_id_offset(6) dt_cnt_minus_1(5)
    ///     template_cnt(6)`, then per template `spatial_id(2)
    ///     temporal_id(3)` followed by `dt_cnt` 2-bit DTIs;
    ///   * active decode targets: 32-bit mask.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bool(self.start_of_frame);
        w.write_bool(self.end_of_frame);
        w.write(self.template_id as u64 & 0x3F, 6);
        w.write(self.frame_number as u64, 16);
        if self.is_extended() {
            w.write_bool(self.structure.is_some());
            w.write_bool(self.active_decode_targets.is_some());
            w.write(0, 6);
            if let Some(s) = &self.structure {
                debug_assert!(!s.templates.is_empty() && s.templates.len() <= 63);
                debug_assert!(s.decode_target_count >= 1 && s.decode_target_count <= 32);
                w.write(s.template_id_offset as u64 & 0x3F, 6);
                w.write((s.decode_target_count - 1) as u64, 5);
                w.write(s.templates.len() as u64, 6);
                for t in &s.templates {
                    w.write(t.spatial_id as u64 & 0x3, 2);
                    w.write(t.temporal_id as u64 & 0x7, 3);
                    debug_assert_eq!(t.dtis.len(), s.decode_target_count as usize);
                    for d in &t.dtis {
                        w.write(*d as u64, 2);
                    }
                }
            }
            if let Some(adt) = self.active_decode_targets {
                w.write(adt as u64, 32);
            }
        }
        w.finish()
    }

    /// Parse from an extension element's bytes.
    pub fn parse(buf: &[u8]) -> Result<DependencyDescriptor, ProtoError> {
        let mut r = BitReader::new(buf);
        let start_of_frame = r.read_bool()?;
        let end_of_frame = r.read_bool()?;
        let template_id = r.read(6)? as u8;
        let frame_number = r.read(16)? as u16;
        let mut dd = DependencyDescriptor {
            start_of_frame,
            end_of_frame,
            template_id,
            frame_number,
            structure: None,
            active_decode_targets: None,
        };
        if r.remaining() >= 8 {
            let structure_present = r.read_bool()?;
            let adt_present = r.read_bool()?;
            let _reserved = r.read(6)?;
            if structure_present {
                let template_id_offset = r.read(6)? as u8;
                let dt_cnt = r.read(5)? as u8 + 1;
                let template_cnt = r.read(6)? as usize;
                if template_cnt == 0 {
                    return Err(ProtoError::Malformed("empty template structure"));
                }
                let mut templates = Vec::with_capacity(template_cnt);
                for _ in 0..template_cnt {
                    let spatial_id = r.read(2)? as u8;
                    let temporal_id = r.read(3)? as u8;
                    let mut dtis = Vec::with_capacity(dt_cnt as usize);
                    for _ in 0..dt_cnt {
                        dtis.push(Dti::from_bits(r.read(2)?));
                    }
                    templates.push(TemplateInfo {
                        spatial_id,
                        temporal_id,
                        dtis,
                    });
                }
                dd.structure = Some(TemplateStructure {
                    template_id_offset,
                    decode_target_count: dt_cnt,
                    templates,
                });
            }
            if adt_present {
                dd.active_decode_targets = Some(r.read(32)? as u32);
            }
        }
        Ok(dd)
    }

    /// Parse only the 3-byte mandatory fields — the operation Scallop's
    /// switch parser performs at line rate (Appendix E). Also reports
    /// whether an extended part follows (those packets go to the agent).
    pub fn parse_mandatory(buf: &[u8]) -> Result<(bool, bool, u8, u16, bool), ProtoError> {
        if buf.len() < 3 {
            return Err(ProtoError::Truncated {
                needed: 3,
                got: buf.len(),
            });
        }
        let start = buf[0] & 0x80 != 0;
        let end = buf[0] & 0x40 != 0;
        let template_id = buf[0] & 0x3F;
        let frame_number = u16::from_be_bytes([buf[1], buf[2]]);
        Ok((start, end, template_id, frame_number, buf.len() > 3))
    }
}

/// The paper's L1T3 layer semantics (§5.4): which decode target delivers
/// which frame rate.
pub mod l1t3 {
    /// Frame rate of each decode target (DT0..DT2).
    pub const TARGET_FPS: [f64; 3] = [7.5, 15.0, 30.0];
    /// Number of decode targets.
    pub const DECODE_TARGETS: u8 = 3;
    /// Highest temporal layer id.
    pub const MAX_TEMPORAL: u8 = 2;

    /// Temporal layer of each of the five L1T3 templates
    /// (ids 0,1 → T0; 2 → T1; 3,4 → T2), per §5.4.
    pub const TEMPLATE_TEMPORAL: [u8; 5] = [0, 0, 1, 2, 2];

    /// The highest temporal id included in a decode target.
    pub const fn max_temporal_for_target(dt: u8) -> u8 {
        if dt >= 2 {
            2
        } else {
            dt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mandatory_round_trip() {
        let dd = DependencyDescriptor::mandatory(true, false, 3, 777);
        let bytes = dd.serialize();
        assert_eq!(bytes.len(), 3);
        let parsed = DependencyDescriptor::parse(&bytes).unwrap();
        assert_eq!(parsed, dd);
        let (s, e, tid, fno, ext) = DependencyDescriptor::parse_mandatory(&bytes).unwrap();
        assert!(s);
        assert!(!e);
        assert_eq!(tid, 3);
        assert_eq!(fno, 777);
        assert!(!ext);
    }

    #[test]
    fn extended_round_trip_with_structure() {
        let mut dd = DependencyDescriptor::mandatory(true, true, 0, 0);
        dd.structure = Some(TemplateStructure::l1t3());
        dd.active_decode_targets = Some(0b111);
        let bytes = dd.serialize();
        assert!(bytes.len() > 3);
        let parsed = DependencyDescriptor::parse(&bytes).unwrap();
        assert_eq!(parsed, dd);
        let (.., ext) = DependencyDescriptor::parse_mandatory(&bytes).unwrap();
        assert!(ext, "extended DD must be flagged for the agent");
    }

    #[test]
    fn l1t3_layer_mapping_matches_paper() {
        let s = TemplateStructure::l1t3();
        // §5.4: "Template ids 0 and 1 represent the base layer (7.5 fps),
        // id 2 the first enhancement layer (15 fps), and ids 3 and 4 the
        // second enhancement layer (30 fps)."
        assert_eq!(s.temporal_of(0), Some(0));
        assert_eq!(s.temporal_of(1), Some(0));
        assert_eq!(s.temporal_of(2), Some(1));
        assert_eq!(s.temporal_of(3), Some(2));
        assert_eq!(s.temporal_of(4), Some(2));
        assert_eq!(s.temporal_of(5), None);
        // DT0 delivers only T0; DT1 up to T1; DT2 everything.
        assert_eq!(s.max_temporal_for_target(0), 0);
        assert_eq!(s.max_temporal_for_target(1), 1);
        assert_eq!(s.max_temporal_for_target(2), 2);
        // "Dropping frame ids 3 and 4 would reduce the frame rate from
        // 30 fps to 15 fps": templates 3,4 not needed by DT1.
        assert_eq!(s.needed_by(3, 1), Some(false));
        assert_eq!(s.needed_by(4, 1), Some(false));
        assert_eq!(s.needed_by(2, 1), Some(true));
        assert_eq!(s.needed_by(0, 0), Some(true));
    }

    #[test]
    fn template_id_offset_applies() {
        let mut s = TemplateStructure::l1t3();
        s.template_id_offset = 10;
        assert_eq!(s.temporal_of(10), Some(0));
        assert_eq!(s.temporal_of(12), Some(1));
        assert_eq!(s.temporal_of(9), None);
        assert_eq!(s.temporal_of(2), None);
    }

    #[test]
    fn adt_only_extension() {
        let mut dd = DependencyDescriptor::mandatory(false, true, 2, 100);
        dd.active_decode_targets = Some(0b011);
        let parsed = DependencyDescriptor::parse(&dd.serialize()).unwrap();
        assert_eq!(parsed.active_decode_targets, Some(0b011));
        assert!(parsed.structure.is_none());
    }

    #[test]
    fn truncated_rejected() {
        assert!(DependencyDescriptor::parse(&[0x80]).is_err());
        assert!(DependencyDescriptor::parse_mandatory(&[0x80, 0x01]).is_err());
    }

    #[test]
    fn l1t3_constants() {
        assert_eq!(l1t3::max_temporal_for_target(0), 0);
        assert_eq!(l1t3::max_temporal_for_target(1), 1);
        assert_eq!(l1t3::max_temporal_for_target(2), 2);
        assert_eq!(l1t3::TEMPLATE_TEMPORAL[3], 2);
        assert_eq!(l1t3::TARGET_FPS[1], 15.0);
    }
}
