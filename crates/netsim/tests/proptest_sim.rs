//! Property tests for the simulation substrate: conservation, ordering,
//! and determinism under arbitrary traffic.

use proptest::collection::vec;
use proptest::prelude::*;
use scallop_netsim::fault::FaultConfig;
use scallop_netsim::link::{Link, LinkConfig, LinkVerdict};
use scallop_netsim::packet::{HostAddr, Packet};
use scallop_netsim::rng::DetRng;
use scallop_netsim::sim::{Ctx, Node, Simulator, TimerToken};
use scallop_netsim::time::{SimDuration, SimTime};
use std::net::Ipv4Addr;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// FIFO links never reorder: delivery times are non-decreasing in
    /// offer order, whatever the sizes and offer times.
    #[test]
    fn links_are_fifo(
        offers in vec((0u64..1_000_000, 64usize..1_500), 2..64),
        rate in 100_000u64..100_000_000,
    ) {
        let mut link = Link::new(
            LinkConfig::infinite(SimDuration::from_micros(50))
                .with_rate(rate)
                .with_queue_bytes(1 << 30),
        );
        let mut rng = DetRng::new(7);
        let mut offers = offers;
        offers.sort_by_key(|&(t, _)| t);
        let mut last = SimTime::ZERO;
        for (t_us, size) in offers {
            match link.offer(SimTime::from_micros(t_us), size, &mut rng) {
                LinkVerdict::Deliver { at, .. } => {
                    prop_assert!(at >= last, "reordered: {at} < {last}");
                    last = at;
                }
                LinkVerdict::Drop(_) => {}
            }
        }
    }

    /// Conservation: offered = delivered + dropped, and loss statistics
    /// are consistent.
    #[test]
    fn link_conservation(n in 1usize..500, loss in 0.0f64..1.0) {
        let mut link = Link::new(
            LinkConfig::infinite(SimDuration::ZERO)
                .with_faults(FaultConfig::clean().with_loss(loss)),
        );
        let mut rng = DetRng::new(11);
        for i in 0..n {
            let _ = link.offer(SimTime::from_millis(i as u64), 500, &mut rng);
        }
        let s = link.stats;
        prop_assert_eq!(s.offered_packets, n as u64);
        prop_assert_eq!(
            s.delivered_packets + s.queue_drops + s.fault_drops,
            n as u64
        );
    }

    /// Whole-simulation determinism: arbitrary star topologies with
    /// impaired links produce identical event/delivery counts across
    /// runs with the same seed.
    #[test]
    fn simulation_deterministic(
        n_nodes in 2usize..8,
        loss_pct in 0u8..40,
        seed in any::<u64>(),
    ) {
        /// Every node sends a packet to the next node each 10 ms.
        struct Chatter {
            me: HostAddr,
            peer: HostAddr,
            received: u64,
        }
        impl Node for Chatter {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(SimDuration::from_millis(10), TimerToken(1));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: TimerToken) {
                ctx.send(Packet::new(self.me, self.peer, vec![0u8; 200]));
                ctx.schedule(SimDuration::from_millis(10), TimerToken(1));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {
                self.received += 1;
            }
        }
        let build_and_run = || {
            let mut sim = Simulator::new(seed);
            let link = LinkConfig::infinite(SimDuration::from_millis(3))
                .with_rate(5_000_000)
                .with_faults(FaultConfig::clean().with_loss(loss_pct as f64 / 100.0));
            for i in 0..n_nodes {
                let ip = Ipv4Addr::new(10, 5, 0, i as u8 + 1);
                let peer_ip = Ipv4Addr::new(10, 5, 0, ((i + 1) % n_nodes) as u8 + 1);
                sim.add_node(
                    Box::new(Chatter {
                        me: HostAddr::new(ip, 1000),
                        peer: HostAddr::new(peer_ip, 1000),
                        received: 0,
                    }),
                    &[ip],
                    link,
                    link,
                );
            }
            sim.run_until(SimTime::from_secs(2));
            (sim.stats.events, sim.stats.packets_delivered, sim.stats.packets_dropped)
        };
        prop_assert_eq!(build_and_run(), build_and_run());
    }
}
