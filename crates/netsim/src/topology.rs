//! Fabric topology description: edge and core switches joined by trunks.
//!
//! The paper's campus deployment (§7, Figs. 20–21) is not one switch but
//! a *switching fabric*: participants attach to the edge switch of their
//! building, and cross-building meeting traffic rides trunk links through
//! a core tier. This module is the pure *description* of such a fabric —
//! which switches exist, their addresses, and which core relays a given
//! edge pair — with no knowledge of SFU behaviour. `scallop-core`'s
//! fabric builder consumes a [`Topology`] to instantiate actual switch
//! and relay nodes in a [`crate::sim::Simulator`].
//!
//! Address plan (fits the simulator's route-by-IP model):
//!
//! * edge switch `i` owns `10.0.i.100`,
//! * core switch `j` owns `10.0.(200+j).100`,
//! * clients live in `10.1.0.0/16` and beyond (assigned by harnesses).
//!
//! Because every switch allocates SFU UDP ports from a disjoint
//! per-switch range (see [`Topology::port_base`]), a core relay can route
//! a trunk packet to its destination edge from the port number alone —
//! exactly how a real fabric would route on a destination prefix.

use crate::link::LinkConfig;
use crate::time::SimDuration;
use std::net::Ipv4Addr;

/// Role of a switch within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchRole {
    /// Hosts participants and runs the full SFU (data plane + agent).
    Edge,
    /// Pure trunk relay between edges (no participants).
    Core,
}

/// One switch in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Edge or core.
    pub role: SwitchRole,
    /// The switch's IP (all its SFU/trunk ports live on it).
    pub ip: Ipv4Addr,
}

/// First SFU port of edge 0 (matches the single-switch deployment).
pub const FIRST_PORT_BASE: u16 = 10_000;

/// Maximum edges per fabric. The u16 port space above
/// [`FIRST_PORT_BASE`] is split evenly across edges, so more edges mean
/// fewer SFU ports (≈ stream pairs) per edge; 64 edges still leaves
/// ~860 ports each.
pub const MAX_EDGES: usize = 64;

/// A fabric of edge and core switches joined by trunk links.
#[derive(Debug, Clone)]
pub struct Topology {
    /// All switches, edges first (their index order is the fabric's
    /// canonical switch numbering).
    pub switches: Vec<SwitchSpec>,
    /// Link configuration applied to every trunk attachment (both the
    /// uplink and downlink side of each switch's fabric port).
    pub trunk_link: LinkConfig,
}

impl Topology {
    /// A single edge switch, no core — the seed deployment. Building a
    /// harness from this topology reproduces the single-switch system
    /// exactly.
    pub fn single(ip: Ipv4Addr) -> Self {
        Topology {
            switches: vec![SwitchSpec {
                role: SwitchRole::Edge,
                ip,
            }],
            trunk_link: Self::default_trunk_link(),
        }
    }

    /// A campus fabric: `edges` edge switches and `cores` core relays on
    /// the canonical address plan. `cores` may be zero, in which case
    /// edges trunk to each other directly.
    pub fn campus(edges: usize, cores: usize) -> Self {
        assert!(edges >= 1, "a fabric needs at least one edge switch");
        assert!(
            edges <= MAX_EDGES,
            "at most {MAX_EDGES} edges (per-switch port ranges are disjoint u16 slices)"
        );
        assert!(
            cores <= 40,
            "core tier capped by the 10.0.200+ address plan"
        );
        let mut switches = Vec::with_capacity(edges + cores);
        for i in 0..edges {
            switches.push(SwitchSpec {
                role: SwitchRole::Edge,
                ip: Self::edge_ip(i),
            });
        }
        for j in 0..cores {
            switches.push(SwitchSpec {
                role: SwitchRole::Core,
                ip: Self::core_ip(j),
            });
        }
        Topology {
            switches,
            trunk_link: Self::default_trunk_link(),
        }
    }

    /// Campus trunks: 5 µs propagation at effectively unconstrained
    /// rate — a 100 Gb/s fabric link never queues at conferencing scale,
    /// but the rate is still modeled so trunk byte accounting is honest.
    pub fn default_trunk_link() -> LinkConfig {
        LinkConfig::infinite(SimDuration::from_micros(5))
            .with_rate(100_000_000_000)
            .with_queue_bytes(16 * 1024 * 1024)
    }

    /// Builder: replace the trunk link configuration.
    pub fn with_trunk_link(mut self, link: LinkConfig) -> Self {
        self.trunk_link = link;
        self
    }

    /// Canonical IP of edge switch `i`.
    pub fn edge_ip(i: usize) -> Ipv4Addr {
        assert!(i < 200, "edge index out of the 10.0.x address plan");
        Ipv4Addr::new(10, 0, i as u8, 100)
    }

    /// Canonical IP of core switch `j`.
    pub fn core_ip(j: usize) -> Ipv4Addr {
        assert!(j < 40, "core index out of the 10.0.200+ address plan");
        Ipv4Addr::new(10, 0, 200 + j as u8, 100)
    }

    /// Number of edge switches.
    pub fn edge_count(&self) -> usize {
        self.switches
            .iter()
            .filter(|s| s.role == SwitchRole::Edge)
            .count()
    }

    /// Number of core switches.
    pub fn core_count(&self) -> usize {
        self.switches.len() - self.edge_count()
    }

    /// The edge switches, in fabric order.
    pub fn edges(&self) -> Vec<SwitchSpec> {
        self.switches
            .iter()
            .copied()
            .filter(|s| s.role == SwitchRole::Edge)
            .collect()
    }

    /// The core switches, in fabric order.
    pub fn cores(&self) -> Vec<SwitchSpec> {
        self.switches
            .iter()
            .copied()
            .filter(|s| s.role == SwitchRole::Core)
            .collect()
    }

    /// Edge switch `i`, allocation-free (edges precede cores in
    /// `switches`).
    pub fn edge_spec(&self, i: usize) -> SwitchSpec {
        let s = self.switches[i];
        debug_assert_eq!(s.role, SwitchRole::Edge);
        s
    }

    /// Core switch `j`, allocation-free.
    pub fn core_spec(&self, j: usize) -> SwitchSpec {
        let s = self.switches[self.edge_count() + j];
        debug_assert_eq!(s.role, SwitchRole::Core);
        s
    }

    /// Width of each edge's private UDP port range: the space above
    /// [`FIRST_PORT_BASE`] split evenly across this fabric's edges. A
    /// single-edge fabric keeps the whole range, exactly like the seed
    /// single-switch deployment.
    pub fn port_span(&self) -> u16 {
        (u16::MAX - FIRST_PORT_BASE) / self.edge_count() as u16
    }

    /// First SFU UDP port of edge `i`'s private range.
    pub fn port_base(&self, i: usize) -> u16 {
        FIRST_PORT_BASE + i as u16 * self.port_span()
    }

    /// One past the last SFU UDP port of edge `i`'s range (exclusive
    /// upper bound; edges must not allocate at or beyond it, or trunk
    /// routing would misdeliver).
    pub fn port_limit(&self, i: usize) -> u16 {
        self.port_base(i).saturating_add(self.port_span())
    }

    /// The edge index owning `port`, per the disjoint port-range plan.
    pub fn edge_of_port(&self, port: u16) -> Option<usize> {
        if port < FIRST_PORT_BASE {
            return None;
        }
        let edge = ((port - FIRST_PORT_BASE) / self.port_span()) as usize;
        (edge < self.edge_count()).then_some(edge)
    }

    /// Which core relays traffic from edge `a` to edge `b`, or `None`
    /// when the fabric has no core tier (edges trunk directly). The
    /// assignment spreads edge pairs across cores deterministically.
    pub fn core_between(&self, a: usize, b: usize) -> Option<usize> {
        let cores = self.core_count();
        if cores == 0 || a == b {
            return None;
        }
        Some((a + b) % cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_topology_matches_seed_plan() {
        let t = Topology::single(Ipv4Addr::new(10, 0, 0, 100));
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.core_count(), 0);
        assert_eq!(t.port_base(0), 10_000);
        assert_eq!(t.port_limit(0), u16::MAX);
    }

    #[test]
    fn campus_layout() {
        let t = Topology::campus(4, 2);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.core_count(), 2);
        assert_eq!(t.edges()[2].ip, Ipv4Addr::new(10, 0, 2, 100));
        assert_eq!(t.cores()[1].ip, Ipv4Addr::new(10, 0, 201, 100));
    }

    #[test]
    fn port_ranges_are_disjoint_and_invertible() {
        let t = Topology::campus(8, 1);
        for i in 0..8usize {
            let base = t.port_base(i);
            assert_eq!(t.edge_of_port(base), Some(i));
            assert_eq!(t.edge_of_port(t.port_limit(i) - 1), Some(i));
        }
        assert_eq!(t.edge_of_port(9_999), None);
        // Ranges tile the space with no overlap.
        for i in 1..8usize {
            assert_eq!(t.port_limit(i - 1), t.port_base(i));
        }
    }

    #[test]
    fn core_assignment_spreads_pairs() {
        let t = Topology::campus(4, 2);
        assert_eq!(t.core_between(0, 0), None);
        let c01 = t.core_between(0, 1).unwrap();
        let c02 = t.core_between(0, 2).unwrap();
        assert_ne!(c01, c02, "consecutive pairs alternate cores");
        // Symmetric: both directions of a pair ride the same core.
        assert_eq!(t.core_between(1, 0), Some(c01));
        let direct = Topology::campus(3, 0);
        assert_eq!(direct.core_between(0, 1), None);
    }
}
