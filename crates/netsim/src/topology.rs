//! Fabric topology description: edge and core switches joined by trunks.
//!
//! The paper's campus deployment (§7, Figs. 20–21) is not one switch but
//! a *switching fabric*: participants attach to the edge switch of their
//! building, and cross-building meeting traffic rides trunk links through
//! a core tier. This module is the pure *description* of such a fabric —
//! which switches exist, their addresses, and which core relays a given
//! edge pair — with no knowledge of SFU behaviour. `scallop-core`'s
//! fabric builder consumes a [`Topology`] to instantiate actual switch
//! and relay nodes in a [`crate::sim::Simulator`].
//!
//! Address plan (fits the simulator's route-by-IP model):
//!
//! * edge switch `i` owns `10.0.i.100`,
//! * core switch `j` owns `10.0.(200+j).100`,
//! * clients live in `10.1.0.0/16` and beyond (assigned by harnesses).
//!
//! Because every switch allocates SFU UDP ports from a disjoint
//! per-switch range (see [`Topology::port_base`]), a core relay can route
//! a trunk packet to its destination edge from the port number alone —
//! exactly how a real fabric would route on a destination prefix.
//!
//! # The zone tier (federation)
//!
//! [`Topology::federation`] adds a second tier above the campus: `zones`
//! campuses, each with its own edge and core slice, joined by explicit
//! [`WanLink`]s that carry per-link latency / cost / bandwidth metrics.
//! Edges are numbered zone-major (zone `z` owns global edges
//! `z*epz .. (z+1)*epz`), so the existing disjoint port-range plan
//! doubles as a zone plan: any SFU port names its edge *and* its zone.
//! WAN gateway relays own `10.0.(240+k).100` (one per WAN link).
//! Metric-aware routing ([`Topology::wan_path`]) picks the cheapest
//! WAN path by cost with deterministic tie-breaking; the canonical
//! metric plan makes every direct link strictly cheaper than any
//! detour, so media never transits a third zone.
//!
//! A 1-zone topology carries `zones == 1` and no WAN links, and every
//! zone helper degenerates to the campus behaviour — construction is
//! bit-identical to the pre-federation fabric.

use crate::link::LinkConfig;
use crate::time::SimDuration;
use std::net::Ipv4Addr;

/// Role of a switch within the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchRole {
    /// Hosts participants and runs the full SFU (data plane + agent).
    Edge,
    /// Pure trunk relay between edges (no participants).
    Core,
}

/// One switch in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Edge or core.
    pub role: SwitchRole,
    /// The switch's IP (all its SFU/trunk ports live on it).
    pub ip: Ipv4Addr,
}

/// First SFU port of edge 0 (matches the single-switch deployment).
pub const FIRST_PORT_BASE: u16 = 10_000;

/// Maximum edges per fabric. The u16 port space above
/// [`FIRST_PORT_BASE`] is split evenly across edges, so more edges mean
/// fewer SFU ports (≈ stream pairs) per edge; 64 edges still leaves
/// ~860 ports each.
pub const MAX_EDGES: usize = 64;

/// Maximum zones per federation: a full WAN mesh of 6 zones is 15
/// links, which fits the 16-slot `10.0.240+` gateway address plan.
pub const MAX_ZONES: usize = 6;

/// One inter-campus WAN link joining two zones, with the routing
/// metrics the zone tier places and routes on. Unlike intra-campus
/// trunks (whose [`LinkConfig`] is an implementation detail of the
/// simulator), these metrics are surfaced at the topology level so the
/// controller can pick cheapest paths and benches can account per-link
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WanLink {
    /// Lower-numbered endpoint zone.
    pub zone_a: usize,
    /// Higher-numbered endpoint zone.
    pub zone_b: usize,
    /// One-way propagation latency of the link.
    pub latency: SimDuration,
    /// Abstract routing cost (lower is preferred); the canonical plan
    /// guarantees every direct link is strictly cheaper than any
    /// two-link detour.
    pub cost: u32,
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

/// A fabric of edge and core switches joined by trunk links.
#[derive(Debug, Clone)]
pub struct Topology {
    /// All switches, edges first (their index order is the fabric's
    /// canonical switch numbering). In a federation, edges are
    /// zone-major: zone `z` owns edges `z*epz .. (z+1)*epz`, then all
    /// cores follow, also zone-major.
    pub switches: Vec<SwitchSpec>,
    /// Link configuration applied to every trunk attachment (both the
    /// uplink and downlink side of each switch's fabric port).
    pub trunk_link: LinkConfig,
    /// Number of zones (campuses). `1` for [`Topology::single`] and
    /// [`Topology::campus`] — the pre-federation fabric.
    pub zones: usize,
    /// Inter-campus WAN links (empty when `zones == 1`). Stored with
    /// `zone_a < zone_b`; index order is the canonical WAN link
    /// numbering used by gateway addressing and per-link telemetry.
    pub wan_links: Vec<WanLink>,
}

impl Topology {
    /// A single edge switch, no core — the seed deployment. Building a
    /// harness from this topology reproduces the single-switch system
    /// exactly.
    pub fn single(ip: Ipv4Addr) -> Self {
        Topology {
            switches: vec![SwitchSpec {
                role: SwitchRole::Edge,
                ip,
            }],
            trunk_link: Self::default_trunk_link(),
            zones: 1,
            wan_links: Vec::new(),
        }
    }

    /// A campus fabric: `edges` edge switches and `cores` core relays on
    /// the canonical address plan. `cores` may be zero, in which case
    /// edges trunk to each other directly.
    pub fn campus(edges: usize, cores: usize) -> Self {
        assert!(edges >= 1, "a fabric needs at least one edge switch");
        assert!(
            edges <= MAX_EDGES,
            "at most {MAX_EDGES} edges (per-switch port ranges are disjoint u16 slices)"
        );
        assert!(
            cores <= 40,
            "core tier capped by the 10.0.200+ address plan"
        );
        let mut switches = Vec::with_capacity(edges + cores);
        for i in 0..edges {
            switches.push(SwitchSpec {
                role: SwitchRole::Edge,
                ip: Self::edge_ip(i),
            });
        }
        for j in 0..cores {
            switches.push(SwitchSpec {
                role: SwitchRole::Core,
                ip: Self::core_ip(j),
            });
        }
        Topology {
            switches,
            trunk_link: Self::default_trunk_link(),
            zones: 1,
            wan_links: Vec::new(),
        }
    }

    /// A federation of `zones` campuses, each with `edges_per_zone`
    /// edge switches and `cores_per_zone` core relays, joined by a full
    /// mesh of WAN links. Edges are numbered zone-major (then cores,
    /// also zone-major), so zone membership is recoverable from any
    /// global edge index or SFU port.
    ///
    /// The canonical WAN metric plan is deterministic in the zone
    /// distance `d = |a - b|`: cost `10 + d`, latency `5 ms · (1 + d)`,
    /// bandwidth 10 Gb/s. Any two-link detour costs ≥ 20 while the most
    /// expensive direct link costs 15, so the direct link is always the
    /// unique cheapest path — WAN gateways never carry transit traffic.
    ///
    /// `federation(1, e, c)` builds the identical switch list to
    /// `campus(e, c)` with no WAN links.
    pub fn federation(zones: usize, edges_per_zone: usize, cores_per_zone: usize) -> Self {
        assert!(zones >= 1, "a federation needs at least one zone");
        assert!(
            zones <= MAX_ZONES,
            "at most {MAX_ZONES} zones (full-mesh WAN fits the 10.0.240+ plan)"
        );
        let mut t = Self::campus(zones * edges_per_zone, zones * cores_per_zone);
        t.zones = zones;
        for a in 0..zones {
            for b in (a + 1)..zones {
                let d = (b - a) as u64;
                t.wan_links.push(WanLink {
                    zone_a: a,
                    zone_b: b,
                    latency: SimDuration::from_millis(5 * (1 + d)),
                    cost: 10 + d as u32,
                    bandwidth_bps: 10_000_000_000,
                });
            }
        }
        t
    }

    /// Campus trunks: 5 µs propagation at effectively unconstrained
    /// rate — a 100 Gb/s fabric link never queues at conferencing scale,
    /// but the rate is still modeled so trunk byte accounting is honest.
    pub fn default_trunk_link() -> LinkConfig {
        LinkConfig::infinite(SimDuration::from_micros(5))
            .with_rate(100_000_000_000)
            .with_queue_bytes(16 * 1024 * 1024)
    }

    /// Builder: replace the trunk link configuration.
    pub fn with_trunk_link(mut self, link: LinkConfig) -> Self {
        self.trunk_link = link;
        self
    }

    /// Canonical IP of edge switch `i`.
    pub fn edge_ip(i: usize) -> Ipv4Addr {
        assert!(i < 200, "edge index out of the 10.0.x address plan");
        Ipv4Addr::new(10, 0, i as u8, 100)
    }

    /// Canonical IP of core switch `j`.
    pub fn core_ip(j: usize) -> Ipv4Addr {
        assert!(j < 40, "core index out of the 10.0.200+ address plan");
        Ipv4Addr::new(10, 0, 200 + j as u8, 100)
    }

    /// Canonical IP of the WAN gateway relay serving WAN link `idx`
    /// (the index into [`Topology::wan_links`]).
    pub fn wan_ip(idx: usize) -> Ipv4Addr {
        assert!(idx < 16, "WAN link index out of the 10.0.240+ address plan");
        Ipv4Addr::new(10, 0, 240 + idx as u8, 100)
    }

    /// Number of zones (campuses) in the federation; `1` for
    /// single-campus topologies.
    pub fn zone_count(&self) -> usize {
        self.zones
    }

    /// Edge switches per zone (the zone-major stride of the global edge
    /// numbering).
    pub fn edges_per_zone(&self) -> usize {
        self.edge_count() / self.zones
    }

    /// Core relays per zone.
    pub fn cores_per_zone(&self) -> usize {
        self.core_count() / self.zones
    }

    /// The zone owning global edge `e`.
    pub fn zone_of_edge(&self, e: usize) -> usize {
        debug_assert!(e < self.edge_count(), "edge index out of range");
        e / self.edges_per_zone()
    }

    /// The global edge indices belonging to zone `z`.
    pub fn zone_edges(&self, z: usize) -> std::ops::Range<usize> {
        assert!(z < self.zones, "zone index out of range");
        let epz = self.edges_per_zone();
        z * epz..(z + 1) * epz
    }

    /// The WAN link joining zones `a` and `b` (either order), as an
    /// index into [`Topology::wan_links`].
    pub fn wan_link_between(&self, a: usize, b: usize) -> Option<usize> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.wan_links
            .iter()
            .position(|l| l.zone_a == lo && l.zone_b == hi)
    }

    /// Cheapest WAN path from zone `from` to zone `to`, as the ordered
    /// list of WAN link indices to traverse. Dijkstra over the link
    /// costs with a deterministic tie-break (total cost, then hop
    /// count, then lowest intermediate zone). Empty when `from == to`
    /// or no path exists.
    pub fn wan_path(&self, from: usize, to: usize) -> Vec<usize> {
        if from == to || from >= self.zones || to >= self.zones {
            return Vec::new();
        }
        // (cost, hops) per zone; u64::MAX = unreached. Zones are tiny
        // (≤ MAX_ZONES) so a linear-scan Dijkstra is plenty.
        let mut dist = vec![(u64::MAX, usize::MAX); self.zones];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.zones];
        let mut visited = vec![false; self.zones];
        dist[from] = (0, 0);
        loop {
            let mut cur = None;
            for z in 0..self.zones {
                if !visited[z] && dist[z].0 != u64::MAX {
                    match cur {
                        None => cur = Some(z),
                        Some(c) if dist[z] < dist[c] => cur = Some(z),
                        _ => {}
                    }
                }
            }
            let Some(cur) = cur else { break };
            if cur == to {
                break;
            }
            visited[cur] = true;
            for (li, l) in self.wan_links.iter().enumerate() {
                let other = if l.zone_a == cur {
                    l.zone_b
                } else if l.zone_b == cur {
                    l.zone_a
                } else {
                    continue;
                };
                if visited[other] {
                    continue;
                }
                let cand = (dist[cur].0 + l.cost as u64, dist[cur].1 + 1);
                if cand < dist[other] {
                    dist[other] = cand;
                    prev[other] = Some((cur, li));
                }
            }
        }
        let mut path = Vec::new();
        let mut at = to;
        while at != from {
            let Some((p, li)) = prev[at] else {
                return Vec::new();
            };
            path.push(li);
            at = p;
        }
        path.reverse();
        path
    }

    /// The first WAN link on the cheapest path from `from` to `to`
    /// (where a zone-`from` gateway must forward cross-zone traffic).
    pub fn wan_next_hop(&self, from: usize, to: usize) -> Option<usize> {
        self.wan_path(from, to).first().copied()
    }

    /// Number of edge switches.
    pub fn edge_count(&self) -> usize {
        self.switches
            .iter()
            .filter(|s| s.role == SwitchRole::Edge)
            .count()
    }

    /// Number of core switches.
    pub fn core_count(&self) -> usize {
        self.switches.len() - self.edge_count()
    }

    /// The edge switches, in fabric order.
    pub fn edges(&self) -> Vec<SwitchSpec> {
        self.switches
            .iter()
            .copied()
            .filter(|s| s.role == SwitchRole::Edge)
            .collect()
    }

    /// The core switches, in fabric order.
    pub fn cores(&self) -> Vec<SwitchSpec> {
        self.switches
            .iter()
            .copied()
            .filter(|s| s.role == SwitchRole::Core)
            .collect()
    }

    /// Edge switch `i`, allocation-free (edges precede cores in
    /// `switches`).
    pub fn edge_spec(&self, i: usize) -> SwitchSpec {
        let s = self.switches[i];
        debug_assert_eq!(s.role, SwitchRole::Edge);
        s
    }

    /// Core switch `j`, allocation-free.
    pub fn core_spec(&self, j: usize) -> SwitchSpec {
        let s = self.switches[self.edge_count() + j];
        debug_assert_eq!(s.role, SwitchRole::Core);
        s
    }

    /// Width of each edge's private UDP port range: the space above
    /// [`FIRST_PORT_BASE`] split evenly across this fabric's edges. A
    /// single-edge fabric keeps the whole range, exactly like the seed
    /// single-switch deployment.
    pub fn port_span(&self) -> u16 {
        (u16::MAX - FIRST_PORT_BASE) / self.edge_count() as u16
    }

    /// First SFU UDP port of edge `i`'s private range.
    pub fn port_base(&self, i: usize) -> u16 {
        FIRST_PORT_BASE + i as u16 * self.port_span()
    }

    /// One past the last SFU UDP port of edge `i`'s range (exclusive
    /// upper bound; edges must not allocate at or beyond it, or trunk
    /// routing would misdeliver).
    pub fn port_limit(&self, i: usize) -> u16 {
        self.port_base(i).saturating_add(self.port_span())
    }

    /// The edge index owning `port`, per the disjoint port-range plan.
    ///
    /// Out-of-range ports are rejected explicitly: anything below
    /// [`FIRST_PORT_BASE`] and anything at or above the last edge's
    /// [`Topology::port_limit`] (the u16 remainder the even split
    /// leaves unused) maps to no edge — a malformed port must never
    /// silently resolve into a neighbouring zone's range.
    pub fn edge_of_port(&self, port: u16) -> Option<usize> {
        if port < FIRST_PORT_BASE {
            return None;
        }
        let edge = ((port - FIRST_PORT_BASE) / self.port_span()) as usize;
        if edge >= self.edge_count() {
            return None;
        }
        Some(edge)
    }

    /// Which core relays traffic from edge `a` to edge `b`, or `None`
    /// when their zone has no core tier (edges trunk directly), the
    /// edges are in *different* zones (cross-zone traffic rides WAN
    /// gateways, never a campus core), either index is out of range, or
    /// `a == b`. Within a zone the assignment spreads edge pairs across
    /// that zone's cores deterministically; with one zone this is the
    /// classic `(a + b) % cores`.
    pub fn core_between(&self, a: usize, b: usize) -> Option<usize> {
        let ec = self.edge_count();
        if a == b || a >= ec || b >= ec {
            return None;
        }
        let epz = self.edges_per_zone();
        let (za, zb) = (a / epz, b / epz);
        if za != zb {
            return None;
        }
        let cpz = self.cores_per_zone();
        if cpz == 0 {
            return None;
        }
        Some(za * cpz + ((a - za * epz) + (b - zb * epz)) % cpz)
    }

    /// The global core indices belonging to zone `z` (cores are
    /// numbered zone-major, like edges).
    pub fn zone_cores(&self, z: usize) -> std::ops::Range<usize> {
        assert!(z < self.zones, "zone index out of range");
        let cpz = self.cores_per_zone();
        z * cpz..(z + 1) * cpz
    }

    /// [`Topology::core_between`] restricted to *surviving* cores: the
    /// pair's preferred core when it is not in `dead`, otherwise the
    /// next live core rotating through the zone's core slice (the
    /// deterministic failover order every controller computes
    /// identically), or `None` when the pair has no core at all or
    /// every core in the zone is dead — the caller must then fall back
    /// to direct edge-to-edge trunking.
    pub fn core_between_avoiding(&self, a: usize, b: usize, dead: &[usize]) -> Option<usize> {
        let preferred = self.core_between(a, b)?;
        if !dead.contains(&preferred) {
            return Some(preferred);
        }
        let cpz = self.cores_per_zone();
        let base = self.zone_of_edge(a) * cpz;
        (1..cpz)
            .map(|off| base + (preferred - base + off) % cpz)
            .find(|c| !dead.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_topology_matches_seed_plan() {
        let t = Topology::single(Ipv4Addr::new(10, 0, 0, 100));
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.core_count(), 0);
        assert_eq!(t.port_base(0), 10_000);
        assert_eq!(t.port_limit(0), u16::MAX);
    }

    #[test]
    fn campus_layout() {
        let t = Topology::campus(4, 2);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.core_count(), 2);
        assert_eq!(t.edges()[2].ip, Ipv4Addr::new(10, 0, 2, 100));
        assert_eq!(t.cores()[1].ip, Ipv4Addr::new(10, 0, 201, 100));
    }

    #[test]
    fn port_ranges_are_disjoint_and_invertible() {
        let t = Topology::campus(8, 1);
        for i in 0..8usize {
            let base = t.port_base(i);
            assert_eq!(t.edge_of_port(base), Some(i));
            assert_eq!(t.edge_of_port(t.port_limit(i) - 1), Some(i));
        }
        assert_eq!(t.edge_of_port(9_999), None);
        // Ranges tile the space with no overlap.
        for i in 1..8usize {
            assert_eq!(t.port_limit(i - 1), t.port_base(i));
        }
    }

    #[test]
    fn port_span_degenerate_single_edge_keeps_whole_range() {
        // 1 edge: the span is the entire space above FIRST_PORT_BASE —
        // the seed single-switch deployment, bit for bit.
        let t = Topology::single(Ipv4Addr::new(10, 0, 0, 100));
        assert_eq!(t.port_span(), u16::MAX - FIRST_PORT_BASE);
        assert_eq!(t.port_base(0), FIRST_PORT_BASE);
        assert_eq!(t.port_limit(0), u16::MAX);
        assert_eq!(t.edge_of_port(FIRST_PORT_BASE), Some(0));
        assert_eq!(t.edge_of_port(u16::MAX - 1), Some(0));
    }

    #[test]
    fn port_span_at_max_edges_still_tiles_disjointly() {
        // 64 edges is the largest fabric the capacity model budgets
        // for; the even split leaves each edge 867 ports and an unused
        // u16 remainder past the last limit.
        let t = Topology::campus(64, 2);
        assert_eq!(t.port_span(), (u16::MAX - FIRST_PORT_BASE) / 64);
        assert_eq!(t.port_span(), 867);
        for i in 1..64usize {
            assert_eq!(t.port_limit(i - 1), t.port_base(i));
        }
        assert_eq!(t.edge_of_port(t.port_base(63)), Some(63));
        assert_eq!(t.edge_of_port(t.port_limit(63) - 1), Some(63));
        // The remainder past the last edge's limit maps to no edge.
        assert_eq!(t.edge_of_port(t.port_limit(63)), None);
        assert_eq!(t.edge_of_port(u16::MAX), None);
        // Every edge still has room for its local members plus one
        // remote-sender entry per peer edge (2 ports each).
        assert!(u64::from(t.port_span()) > 2 * 64);
    }

    #[test]
    fn port_span_partitions_across_zones_not_within_them() {
        // Port ranges are a fabric-global plan: a federation splits the
        // same space over all zones' edges (zone-major order), so a
        // trunk or WAN packet still routes on destination port alone.
        let t = Topology::federation(4, 16, 0);
        assert_eq!(t.edge_count(), 64);
        assert_eq!(t.port_span(), 867);
        for z in 0..4usize {
            let edges = t.zone_edges(z);
            // The zone's block is contiguous and starts where the
            // previous zone's block ended.
            assert_eq!(
                t.port_base(edges.start),
                FIRST_PORT_BASE + edges.start as u16 * 867
            );
            for e in edges {
                assert_eq!(t.edge_of_port(t.port_base(e)), Some(e));
                assert_eq!(t.zone_of_edge(e), z);
            }
        }
        // Zone boundaries tile exactly like edge boundaries.
        assert_eq!(t.port_limit(15), t.port_base(16));
        assert_eq!(t.port_limit(31), t.port_base(32));
    }

    #[test]
    fn core_assignment_spreads_pairs() {
        let t = Topology::campus(4, 2);
        assert_eq!(t.core_between(0, 0), None);
        let c01 = t.core_between(0, 1).unwrap();
        let c02 = t.core_between(0, 2).unwrap();
        assert_ne!(c01, c02, "consecutive pairs alternate cores");
        // Symmetric: both directions of a pair ride the same core.
        assert_eq!(t.core_between(1, 0), Some(c01));
        let direct = Topology::campus(3, 0);
        assert_eq!(direct.core_between(0, 1), None);
    }

    #[test]
    fn one_zone_federation_matches_campus_exactly() {
        let f = Topology::federation(1, 4, 2);
        let c = Topology::campus(4, 2);
        assert_eq!(f.switches, c.switches);
        assert_eq!(f.zones, 1);
        assert!(f.wan_links.is_empty());
        assert_eq!(f.edges_per_zone(), 4);
        assert_eq!(f.cores_per_zone(), 2);
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(f.core_between(a, b), c.core_between(a, b));
            }
        }
    }

    #[test]
    fn federation_layout_is_zone_major() {
        let t = Topology::federation(3, 2, 1);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.core_count(), 3);
        assert_eq!(t.zone_count(), 3);
        // Zone 1 owns global edges 2..4 and core 1.
        assert_eq!(t.zone_edges(1), 2..4);
        assert_eq!(t.zone_of_edge(2), 1);
        assert_eq!(t.zone_of_edge(3), 1);
        assert_eq!(t.edge_spec(3).ip, Ipv4Addr::new(10, 0, 3, 100));
        assert_eq!(t.core_spec(1).ip, Ipv4Addr::new(10, 0, 201, 100));
        // Full WAN mesh, normalized and deterministic.
        assert_eq!(t.wan_links.len(), 3);
        let l = t.wan_links[t.wan_link_between(2, 0).unwrap()];
        assert_eq!((l.zone_a, l.zone_b), (0, 2));
        assert_eq!(l.cost, 12);
        assert_eq!(l.latency, SimDuration::from_millis(15));
        assert_eq!(l.bandwidth_bps, 10_000_000_000);
    }

    #[test]
    fn wan_routing_prefers_the_direct_link() {
        let t = Topology::federation(4, 1, 0);
        // Direct link is always the unique cheapest path.
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    assert!(t.wan_path(a, b).is_empty());
                    continue;
                }
                let path = t.wan_path(a, b);
                assert_eq!(path, vec![t.wan_link_between(a, b).unwrap()]);
                assert_eq!(t.wan_next_hop(a, b), Some(path[0]));
            }
        }
        // Remove the direct 0-3 link: the cheapest detour (0-1-3, cost
        // 11 + 12) wins over 0-2-3 (12 + 11) by the lowest-zone
        // tie-break on the first hop.
        let mut t = t;
        let direct = t.wan_link_between(0, 3).unwrap();
        t.wan_links.remove(direct);
        let path = t.wan_path(0, 3);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0], t.wan_link_between(0, 1).unwrap());
        assert_eq!(path[1], t.wan_link_between(1, 3).unwrap());
    }

    #[test]
    fn zoned_core_assignment_is_zone_local() {
        let t = Topology::federation(3, 2, 1);
        // Intra-zone pairs use their own zone's core.
        assert_eq!(t.core_between(0, 1), Some(0));
        assert_eq!(t.core_between(2, 3), Some(1));
        assert_eq!(t.core_between(4, 5), Some(2));
        // Cross-zone pairs never ride a campus core.
        assert_eq!(t.core_between(1, 2), None);
        assert_eq!(t.core_between(0, 5), None);
    }

    #[test]
    fn core_between_rejects_out_of_range_edges() {
        let t = Topology::federation(2, 2, 1);
        // Out-of-range indices must not wrap into a neighbour zone's
        // core via the modulo arithmetic.
        assert_eq!(t.core_between(0, 4), None);
        assert_eq!(t.core_between(4, 0), None);
        assert_eq!(t.core_between(7, 8), None);
        let campus = Topology::campus(2, 1);
        assert_eq!(campus.core_between(0, 2), None);
    }

    #[test]
    fn surviving_core_query_rotates_within_the_zone() {
        let t = Topology::campus(4, 3);
        let preferred = t.core_between(0, 1).unwrap();
        // No dead cores: identical to core_between.
        assert_eq!(t.core_between_avoiding(0, 1, &[]), Some(preferred));
        // Preferred core dead: the next core in the zone's rotation.
        let alt = t.core_between_avoiding(0, 1, &[preferred]).unwrap();
        assert_ne!(alt, preferred);
        // Two dead: the single survivor, whichever it is.
        let alt2 = t.core_between_avoiding(0, 1, &[preferred, alt]).unwrap();
        assert!(alt2 != preferred && alt2 != alt);
        // All dead: no core survives — caller falls back to direct.
        assert_eq!(t.core_between_avoiding(0, 1, &[0, 1, 2]), None);
        // Pairs without a core at all are unchanged.
        let direct = Topology::campus(2, 0);
        assert_eq!(direct.core_between_avoiding(0, 1, &[]), None);
    }

    #[test]
    fn surviving_core_query_never_leaves_the_zone() {
        let t = Topology::federation(2, 2, 2);
        assert_eq!(t.zone_cores(0), 0..2);
        assert_eq!(t.zone_cores(1), 2..4);
        let preferred = t.core_between(0, 1).unwrap();
        let alt = t.core_between_avoiding(0, 1, &[preferred]).unwrap();
        assert!(t.zone_cores(0).contains(&alt), "failover stays zone-local");
        // Both zone-0 cores dead: zone 1's live cores must NOT be
        // borrowed — the query reports no survivor.
        assert_eq!(t.core_between_avoiding(0, 1, &[0, 1]), None);
    }

    #[test]
    fn edge_of_port_respects_zone_boundaries() {
        let t = Topology::federation(2, 2, 0);
        // The zone 0 / zone 1 boundary sits between edges 1 and 2.
        let boundary = t.port_base(2);
        assert_eq!(t.edge_of_port(boundary - 1), Some(1));
        assert_eq!(t.edge_of_port(boundary), Some(2));
        assert_eq!(t.zone_of_edge(1), 0);
        assert_eq!(t.zone_of_edge(2), 1);
        // Below the plan and beyond the last edge's limit: no edge, no
        // silent wrap into another range.
        assert_eq!(t.edge_of_port(FIRST_PORT_BASE - 1), None);
        assert_eq!(t.edge_of_port(t.port_limit(3)), None);
        assert_eq!(t.edge_of_port(u16::MAX), None);
    }
}
