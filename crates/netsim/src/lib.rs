//! # scallop-netsim — deterministic discrete-event network simulator
//!
//! This crate is the substrate every Scallop experiment runs on. The paper
//! evaluates on a hardware testbed (Tofino2 switch + client servers); this
//! reproduction replaces the testbed with a seedable, nanosecond-resolution
//! discrete-event simulation so that every figure can be regenerated
//! bit-for-bit from a seed.
//!
//! ## Model
//!
//! * A [`Simulator`] owns a set of [`Node`]s. A node is a host identified by
//!   one or more IPv4 addresses (a client, an SFU server, a switch).
//! * Each node attaches to the network through an *access link pair*
//!   (uplink + downlink), each a [`link::Link`] with a transmission rate, a
//!   propagation delay, a drop-tail queue, and an optional fault injector
//!   ([`fault::FaultConfig`]: Bernoulli or Gilbert–Elliott loss, duplication,
//!   reordering, jitter).
//! * A packet sent from A to B experiences A's uplink (queueing +
//!   serialization + propagation) followed by B's downlink. This mirrors the
//!   paper's uplink/downlink vocabulary (§5.3) and is exact for the
//!   star topologies used throughout the evaluation.
//! * Nodes interact with the world only through [`Ctx`]: reading the virtual
//!   clock, sending packets, scheduling timers, and drawing deterministic
//!   randomness.
//!
//! ## What is intentionally omitted
//!
//! Following the smoltcp tradition of stating non-features: there is no
//! routing protocol, no TCP, no ARP, and no real I/O — experiments here need
//! only UDP-like datagram delivery with controllable impairments.

pub mod fault;
pub mod link;
pub mod packet;
pub mod relay;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use fault::{FaultConfig, JitterModel, LossModel};
pub use link::{Link, LinkConfig};
pub use packet::{HostAddr, Packet, WIRE_OVERHEAD_BYTES};
pub use relay::{PortRangeRoute, RelayNode, RelayStats};
pub use rng::DetRng;
pub use sim::{Ctx, Node, NodeId, Simulator, TimerToken};
pub use time::{SimDuration, SimTime};
pub use topology::{SwitchRole, SwitchSpec, Topology};
pub use trace::{TraceRecord, TraceSink};
