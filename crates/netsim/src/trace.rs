//! In-simulation packet trace capture.
//!
//! The paper's Table 1 and Table 2 are produced by analyzing packet traces.
//! [`TraceSink`] records a [`TraceRecord`] per delivered packet when
//! enabled; the analysis code in `scallop-bench` then classifies records by
//! protocol exactly as the paper's trace analysis does.

use crate::packet::HostAddr;
use crate::time::SimTime;

/// Where the record was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDirection {
    /// Packet delivered into a node.
    Delivered,
}

/// One captured packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Delivery time.
    pub at: SimTime,
    /// Source endpoint.
    pub src: HostAddr,
    /// Destination endpoint.
    pub dst: HostAddr,
    /// UDP payload bytes.
    pub payload_bytes: usize,
    /// On-the-wire bytes.
    pub wire_bytes: usize,
    /// Capture point.
    pub direction: TraceDirection,
}

/// A bounded packet-trace recorder.
#[derive(Debug, Clone)]
pub struct TraceSink {
    enabled: bool,
    capacity: usize,
    records: Vec<TraceRecord>,
    /// Count of records discarded after the buffer filled.
    pub overflowed: u64,
}

impl TraceSink {
    /// A sink that records nothing (zero overhead).
    pub fn disabled() -> Self {
        TraceSink {
            enabled: false,
            capacity: 0,
            records: Vec::new(),
            overflowed: 0,
        }
    }

    /// A sink that keeps up to `capacity` records.
    pub fn bounded(capacity: usize) -> Self {
        TraceSink {
            enabled: true,
            capacity,
            records: Vec::with_capacity(capacity.min(1 << 16)),
            overflowed: 0,
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one packet (no-op when disabled or full).
    pub fn record(&mut self, rec: TraceRecord) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.capacity {
            self.overflowed += 1;
            return;
        }
        self.records.push(rec);
    }

    /// All captured records in delivery order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of captured records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drop all records but keep recording.
    pub fn clear(&mut self) {
        self.records.clear();
        self.overflowed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn rec(t_ms: u64) -> TraceRecord {
        TraceRecord {
            at: SimTime::from_millis(t_ms),
            src: HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 1),
            dst: HostAddr::new(Ipv4Addr::new(10, 0, 0, 2), 2),
            payload_bytes: 100,
            wire_bytes: 142,
            direction: TraceDirection::Delivered,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut sink = TraceSink::disabled();
        sink.record(rec(1));
        assert!(sink.is_empty());
        assert!(!sink.is_enabled());
    }

    #[test]
    fn bounded_capacity_enforced() {
        let mut sink = TraceSink::bounded(2);
        for t in 0..5 {
            sink.record(rec(t));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.overflowed, 3);
        assert_eq!(sink.records()[0].at, SimTime::from_millis(0));
    }

    #[test]
    fn clear_resets() {
        let mut sink = TraceSink::bounded(8);
        sink.record(rec(1));
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.overflowed, 0);
        sink.record(rec(2));
        assert_eq!(sink.len(), 1);
    }
}
