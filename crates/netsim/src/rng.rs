//! Deterministic randomness.
//!
//! Every stochastic element of the simulation (fault injection, workload
//! arrivals, payload filling) draws from a [`DetRng`] seeded at simulator
//! construction, so runs are exactly reproducible. The generator is a
//! self-contained xoshiro256++ (seeded through splitmix64) — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets — implemented
//! locally so the simulation substrate carries no external dependencies.

/// A seedable, fast, deterministic random number generator
/// (xoshiro256++).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child generator. Used to give each link /
    /// workload component its own stream so adding a component never
    /// perturbs the draws of another.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform value in `[0, 1)` (53-bit resolution).
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift bounded draw (Lemire); bias is < 2^-64 × span,
        // irrelevant for simulation workloads.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling). Used for Poisson arrival processes in the workload models.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = self.unit().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Approximately normal value via the central limit of 12 uniforms
    /// (Irwin–Hall); adequate for jitter models and far faster than
    /// Box–Muller in the hot path.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let s: f64 = (0..12).map(|_| self.unit()).sum::<f64>() - 6.0;
        mean + std_dev * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = DetRng::new(7);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = DetRng::new(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        // Children produce different streams from each other and the parent.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn range_u64_in_bounds() {
        let mut r = DetRng::new(13);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }
}
