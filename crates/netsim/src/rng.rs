//! Deterministic randomness.
//!
//! Every stochastic element of the simulation (fault injection, workload
//! arrivals, payload filling) draws from a [`DetRng`] seeded at simulator
//! construction, so runs are exactly reproducible. `SmallRng` (xoshiro) is
//! used because speed matters more than cryptographic quality here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seedable, fast, deterministic random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child generator. Used to give each link /
    /// workload component its own stream so adding a component never
    /// perturbs the draws of another.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.inner.gen::<u64>())
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// sampling). Used for Poisson arrival processes in the workload models.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Approximately normal value via the central limit of 12 uniforms
    /// (Irwin–Hall); adequate for jitter models and far faster than
    /// Box–Muller in the hot path.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let s: f64 = (0..12).map(|_| self.inner.gen::<f64>()).sum::<f64>() - 6.0;
        mean + std_dev * s
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Access the underlying `rand` generator for distribution sampling.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_tracks_p() {
        let mut r = DetRng::new(7);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = DetRng::new(9);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        // Children produce different streams from each other and the parent.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
