//! The datagram type that flows through the simulation.
//!
//! All conferencing traffic in the paper is UDP (RTP/RTCP/STUN over UDP), so
//! the simulator models exactly one packet shape: a UDP datagram with an
//! opaque payload. Layer-2/3/4 headers are accounted for as a fixed
//! [`WIRE_OVERHEAD_BYTES`] when computing serialization times and byte
//! counters, matching how the paper reports on-the-wire byte volumes.

use bytes::Bytes;
use std::fmt;
use std::net::Ipv4Addr;

/// Ethernet (14) + IPv4 (20) + UDP (8) header bytes added to every payload
/// when computing wire sizes.
pub const WIRE_OVERHEAD_BYTES: usize = 42;

/// A host endpoint: IPv4 address + UDP port.
///
/// The simulator routes on the IPv4 address (a node may own several
/// addresses); the port disambiguates streams within a node, exactly like
/// the per-participant UDP streams Scallop splits in §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostAddr {
    /// IPv4 address identifying the node.
    pub ip: Ipv4Addr,
    /// UDP port within the node.
    pub port: u16,
}

impl HostAddr {
    /// Create an endpoint address.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        HostAddr { ip, port }
    }

    /// Convenience constructor from octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        HostAddr {
            ip: Ipv4Addr::new(a, b, c, d),
            port,
        }
    }
}

impl fmt::Display for HostAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// A UDP datagram in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source endpoint.
    pub src: HostAddr,
    /// Destination endpoint; the simulator routes on `dst.ip`.
    pub dst: HostAddr,
    /// UDP payload (RTP, RTCP, STUN, or application bytes).
    pub payload: Bytes,
}

impl Packet {
    /// Create a packet.
    pub fn new(src: HostAddr, dst: HostAddr, payload: impl Into<Bytes>) -> Self {
        Packet {
            src,
            dst,
            payload: payload.into(),
        }
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Total on-the-wire size (payload + L2/L3/L4 headers).
    pub fn wire_len(&self) -> usize {
        self.payload.len() + WIRE_OVERHEAD_BYTES
    }

    /// Total on-the-wire size in bits.
    pub fn wire_bits(&self) -> u64 {
        self.wire_len() as u64 * 8
    }

    /// Return a copy re-addressed to a new source/destination pair, payload
    /// shared (zero-copy). This is exactly the rewrite Scallop's egress
    /// pipeline performs on replicas (§6.1 "Addressing replicated packets").
    pub fn readdressed(&self, src: HostAddr, dst: HostAddr) -> Packet {
        Packet {
            src,
            dst,
            payload: self.payload.clone(),
        }
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} ({}B)", self.src, self.dst, self.payload.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8, port: u16) -> HostAddr {
        HostAddr::from_octets(10, 0, 0, last, port)
    }

    #[test]
    fn wire_size_includes_overhead() {
        let p = Packet::new(addr(1, 1000), addr(2, 2000), vec![0u8; 1200]);
        assert_eq!(p.payload_len(), 1200);
        assert_eq!(p.wire_len(), 1200 + WIRE_OVERHEAD_BYTES);
        assert_eq!(p.wire_bits(), ((1200 + WIRE_OVERHEAD_BYTES) * 8) as u64);
    }

    #[test]
    fn readdressing_shares_payload() {
        let p = Packet::new(addr(1, 1000), addr(2, 2000), vec![7u8; 64]);
        let q = p.readdressed(addr(9, 9), addr(3, 3000));
        assert_eq!(q.payload, p.payload);
        assert_eq!(q.src, addr(9, 9));
        assert_eq!(q.dst, addr(3, 3000));
        // Bytes clones are reference-counted views of the same allocation.
        assert_eq!(q.payload.as_ptr(), p.payload.as_ptr());
    }

    #[test]
    fn display_is_reasonable() {
        let p = Packet::new(addr(1, 1000), addr(2, 2000), vec![0u8; 3]);
        assert_eq!(format!("{p}"), "10.0.0.1:1000 -> 10.0.0.2:2000 (3B)");
    }
}
