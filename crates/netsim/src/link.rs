//! Access-link model: rate limiting, drop-tail queueing, propagation delay.
//!
//! Every node attaches to the network through an uplink/downlink pair. A
//! [`Link`] is a fluid transmitter: packets serialize one at a time at
//! `rate_bps`, waiting in a bounded drop-tail queue when the transmitter is
//! busy. This produces the congestion signals (queueing delay growth, tail
//! drops) that drive the GCC bandwidth estimator in `scallop-client`,
//! which in turn drives the paper's rate-adaptation experiments (Fig. 14).

use crate::fault::{FaultConfig, FaultInjector};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Static description of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Transmission rate in bits/s; `0` means infinite (no serialization
    /// delay, no queueing).
    pub rate_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Drop-tail queue capacity in bytes (on-the-wire bytes). Ignored for
    /// infinite-rate links.
    pub queue_bytes: usize,
    /// Fault injection applied after queueing.
    pub faults: FaultConfig,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            rate_bps: 0,
            prop_delay: SimDuration::from_millis(5),
            queue_bytes: 256 * 1024,
            faults: FaultConfig::clean(),
        }
    }
}

impl LinkConfig {
    /// An unconstrained link with the given propagation delay.
    pub fn infinite(prop_delay: SimDuration) -> Self {
        LinkConfig {
            rate_bps: 0,
            prop_delay,
            ..Default::default()
        }
    }

    /// A rate-limited link.
    pub fn with_rate(mut self, rate_bps: u64) -> Self {
        self.rate_bps = rate_bps;
        self
    }

    /// Set the propagation delay.
    pub fn with_prop_delay(mut self, d: SimDuration) -> Self {
        self.prop_delay = d;
        self
    }

    /// Set the queue capacity in bytes.
    pub fn with_queue_bytes(mut self, b: usize) -> Self {
        self.queue_bytes = b;
        self
    }

    /// Set the fault configuration.
    pub fn with_faults(mut self, f: FaultConfig) -> Self {
        self.faults = f;
        self
    }
}

/// Why a link refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The drop-tail queue was full.
    QueueOverflow,
    /// The fault injector dropped it.
    Fault,
}

/// Outcome of offering a packet to a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver at the far end at the given time; optionally also deliver a
    /// duplicate at the (possibly different) second time.
    Deliver {
        /// Arrival time of the packet at the far end of the link.
        at: SimTime,
        /// Arrival time of an injected duplicate, if any.
        duplicate_at: Option<SimTime>,
    },
    /// The packet was dropped.
    Drop(DropReason),
}

/// Counters exported by a link for the byte/packet accounting experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered to the link.
    pub offered_packets: u64,
    /// Bytes offered (wire bytes).
    pub offered_bytes: u64,
    /// Packets delivered (duplicates excluded).
    pub delivered_packets: u64,
    /// Packets dropped due to queue overflow.
    pub queue_drops: u64,
    /// Packets dropped by fault injection.
    pub fault_drops: u64,
}

/// One direction of an access link.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    injector: FaultInjector,
    /// Time at which the transmitter finishes its current backlog.
    busy_until: SimTime,
    /// Statistics.
    pub stats: LinkStats,
}

impl Link {
    /// Build a link from its configuration.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            injector: FaultInjector::new(config.faults),
            config,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Change the transmission rate at runtime (used to emulate congestion
    /// onset in the Fig. 14 experiment).
    pub fn set_rate_bps(&mut self, rate_bps: u64) {
        self.config.rate_bps = rate_bps;
    }

    /// Replace the fault configuration at runtime.
    pub fn set_faults(&mut self, faults: FaultConfig) {
        self.config.faults = faults;
        self.injector.set_config(faults);
    }

    /// Backlog currently queued ahead of a new arrival, in bytes
    /// (0 for infinite-rate links).
    pub fn backlog_bytes(&self, now: SimTime) -> usize {
        if self.config.rate_bps == 0 {
            return 0;
        }
        let backlog = self.busy_until.saturating_since(now);
        // bytes = time * rate / 8
        ((backlog.as_secs_f64() * self.config.rate_bps as f64) / 8.0) as usize
    }

    /// Offer one packet of `wire_bytes` to the link at time `now`.
    pub fn offer(&mut self, now: SimTime, wire_bytes: usize, rng: &mut DetRng) -> LinkVerdict {
        self.stats.offered_packets += 1;
        self.stats.offered_bytes += wire_bytes as u64;

        // Drop-tail admission against the current backlog.
        if self.config.rate_bps != 0 {
            let backlog = self.backlog_bytes(now);
            if backlog + wire_bytes > self.config.queue_bytes {
                self.stats.queue_drops += 1;
                return LinkVerdict::Drop(DropReason::QueueOverflow);
            }
        }

        let verdict = self.injector.judge(rng);
        if verdict.dropped {
            self.stats.fault_drops += 1;
            return LinkVerdict::Drop(DropReason::Fault);
        }

        // Serialization: the transmitter is FIFO, so this packet starts when
        // the backlog clears.
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let ser = SimDuration::serialization(wire_bytes, self.config.rate_bps);
        let tx_done = start + ser;
        if self.config.rate_bps != 0 {
            self.busy_until = tx_done;
        }

        let arrival = tx_done + self.config.prop_delay + verdict.extra_delay;
        self.stats.delivered_packets += 1;
        let duplicate_at = if verdict.duplicate {
            // Duplicates trail the original by one serialization time.
            Some(arrival + ser)
        } else {
            None
        };
        LinkVerdict::Deliver {
            at: arrival,
            duplicate_at,
        }
    }

    /// Utilization estimate over an interval: delivered bits / capacity.
    /// Returns `None` for infinite-rate links.
    pub fn utilization(&self, elapsed: SimDuration) -> Option<f64> {
        if self.config.rate_bps == 0 || elapsed == SimDuration::ZERO {
            return None;
        }
        let capacity_bits = self.config.rate_bps as f64 * elapsed.as_secs_f64();
        Some((self.stats.offered_bytes as f64 * 8.0 / capacity_bits).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rate: u64) -> (Link, DetRng) {
        (
            Link::new(
                LinkConfig::infinite(SimDuration::from_millis(10))
                    .with_rate(rate)
                    .with_queue_bytes(10_000),
            ),
            DetRng::new(1),
        )
    }

    #[test]
    fn infinite_link_adds_only_propagation() {
        let (mut link, mut rng) = mk(0);
        match link.offer(SimTime::from_millis(100), 1500, &mut rng) {
            LinkVerdict::Deliver { at, duplicate_at } => {
                assert_eq!(at, SimTime::from_millis(110));
                assert!(duplicate_at.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialization_delay_applied() {
        // 1250 wire bytes at 1 Mbit/s = 10 ms serialization + 10 ms prop.
        let (mut link, mut rng) = mk(1_000_000);
        match link.offer(SimTime::ZERO, 1250, &mut rng) {
            LinkVerdict::Deliver { at, .. } => assert_eq!(at, SimTime::from_millis(20)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let (mut link, mut rng) = mk(1_000_000);
        // Three back-to-back 1250B packets at t=0: arrivals at 20, 30, 40 ms.
        let mut arrivals = vec![];
        for _ in 0..3 {
            if let LinkVerdict::Deliver { at, .. } = link.offer(SimTime::ZERO, 1250, &mut rng) {
                arrivals.push(at.as_millis_f64());
            }
        }
        assert_eq!(arrivals, vec![20.0, 30.0, 40.0]);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut link = Link::new(
            LinkConfig::infinite(SimDuration::ZERO)
                .with_rate(1_000_000)
                .with_queue_bytes(3000),
        );
        let mut rng = DetRng::new(2);
        let mut drops = 0;
        for _ in 0..10 {
            if let LinkVerdict::Drop(DropReason::QueueOverflow) =
                link.offer(SimTime::ZERO, 1250, &mut rng)
            {
                drops += 1;
            }
        }
        assert!(drops >= 7, "expected most packets to overflow, got {drops}");
        assert_eq!(link.stats.queue_drops, drops);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = Link::new(
            LinkConfig::infinite(SimDuration::ZERO)
                .with_rate(1_000_000)
                .with_queue_bytes(2500),
        );
        let mut rng = DetRng::new(3);
        assert!(matches!(
            link.offer(SimTime::ZERO, 1250, &mut rng),
            LinkVerdict::Deliver { .. }
        ));
        assert!(matches!(
            link.offer(SimTime::ZERO, 1250, &mut rng),
            LinkVerdict::Deliver { .. }
        ));
        // Queue full now.
        assert!(matches!(
            link.offer(SimTime::ZERO, 1250, &mut rng),
            LinkVerdict::Drop(DropReason::QueueOverflow)
        ));
        // 20 ms later the backlog has drained; admission succeeds again.
        assert!(matches!(
            link.offer(SimTime::from_millis(20), 1250, &mut rng),
            LinkVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn fault_drop_counted() {
        let mut link = Link::new(
            LinkConfig::infinite(SimDuration::ZERO)
                .with_faults(FaultConfig::clean().with_loss(1.0)),
        );
        let mut rng = DetRng::new(4);
        assert!(matches!(
            link.offer(SimTime::ZERO, 100, &mut rng),
            LinkVerdict::Drop(DropReason::Fault)
        ));
        assert_eq!(link.stats.fault_drops, 1);
    }

    #[test]
    fn duplicate_scheduled_after_original() {
        let mut link = Link::new(
            LinkConfig::infinite(SimDuration::from_millis(1))
                .with_rate(1_000_000)
                .with_faults(FaultConfig::clean().with_duplication(1.0)),
        );
        let mut rng = DetRng::new(5);
        match link.offer(SimTime::ZERO, 1250, &mut rng) {
            LinkVerdict::Deliver { at, duplicate_at } => {
                let dup = duplicate_at.expect("duplicate expected");
                assert!(dup > at);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn runtime_rate_change_takes_effect() {
        let (mut link, mut rng) = mk(1_000_000);
        link.set_rate_bps(2_000_000);
        match link.offer(SimTime::ZERO, 1250, &mut rng) {
            // 5 ms serialization at 2 Mbit/s + 10 ms prop.
            LinkVerdict::Deliver { at, .. } => assert_eq!(at, SimTime::from_millis(15)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn utilization_reported() {
        let (mut link, mut rng) = mk(1_000_000);
        for _ in 0..10 {
            let _ = link.offer(SimTime::ZERO, 1250, &mut rng);
        }
        // 12_500 bytes = 100_000 bits over 1 s on a 1 Mbit/s link = 10%.
        let u = link.utilization(SimDuration::from_secs(1)).unwrap();
        assert!((u - 0.1).abs() < 1e-9);
        let inf = Link::new(LinkConfig::infinite(SimDuration::ZERO));
        assert!(inf.utilization(SimDuration::from_secs(1)).is_none());
    }
}
