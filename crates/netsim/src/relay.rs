//! Port-range packet relay: the core tier of a switching fabric.
//!
//! A [`RelayNode`] owns one IP and forwards every packet it receives to
//! the next hop that owns the packet's destination *port range* —
//! mirroring how a fabric core routes on a destination prefix without
//! touching payload. Scallop's fabric builder points edge-switch trunk
//! replicas at a core relay; the relay rewrites only the destination IP
//! (the port, which names the trunk ingress rule on the destination
//! edge, is preserved) and re-emits the packet, so it traverses the
//! core's access links like any other hop.

use crate::packet::Packet;
use crate::sim::{Ctx, Node, TimerToken};
use std::net::Ipv4Addr;

/// Route entry: destination ports in `[lo, hi]` forward to `next_hop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortRangeRoute {
    /// First port of the range (inclusive).
    pub lo: u16,
    /// Last port of the range (inclusive).
    pub hi: u16,
    /// IP of the node owning the range.
    pub next_hop: Ipv4Addr,
}

/// Relay counters (trunk accounting for the fabric experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Packets relayed toward a next hop.
    pub relayed_pkts: u64,
    /// Payload bytes relayed.
    pub relayed_bytes: u64,
    /// Packets with no matching route (dropped).
    pub unroutable_pkts: u64,
}

/// A core switch: relays by destination port range.
#[derive(Debug)]
pub struct RelayNode {
    routes: Vec<PortRangeRoute>,
    /// Counters.
    pub stats: RelayStats,
}

impl RelayNode {
    /// A relay with no routes yet.
    pub fn new() -> Self {
        RelayNode {
            routes: Vec::new(),
            stats: RelayStats::default(),
        }
    }

    /// Install a route. Later routes win on overlap (none are expected).
    pub fn add_route(&mut self, route: PortRangeRoute) {
        self.routes.push(route);
    }

    /// Look up the next hop for a destination port.
    pub fn next_hop(&self, port: u16) -> Option<Ipv4Addr> {
        self.routes
            .iter()
            .rev()
            .find(|r| (r.lo..=r.hi).contains(&port))
            .map(|r| r.next_hop)
    }
}

impl Default for RelayNode {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for RelayNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        match self.next_hop(pkt.dst.port) {
            Some(ip) => {
                self.stats.relayed_pkts += 1;
                self.stats.relayed_bytes += pkt.payload_len() as u64;
                let dst = crate::packet::HostAddr::new(ip, pkt.dst.port);
                let src = pkt.src;
                ctx.send(pkt.readdressed(src, dst));
            }
            None => self.stats.unroutable_pkts += 1,
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerToken) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::packet::HostAddr;
    use crate::sim::Simulator;
    use crate::time::{SimDuration, SimTime};

    struct Sink {
        got: Vec<Packet>,
    }
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            self.got.push(pkt);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: TimerToken) {}
    }

    #[test]
    fn relays_by_port_range_preserving_src_and_port() {
        let mut sim = Simulator::new(1);
        let link = LinkConfig::infinite(SimDuration::from_millis(1));
        let core_ip = Ipv4Addr::new(10, 0, 200, 100);
        let edge_ip = Ipv4Addr::new(10, 0, 1, 100);
        let mut relay = RelayNode::new();
        relay.add_route(PortRangeRoute {
            lo: 13_000,
            hi: 15_999,
            next_hop: edge_ip,
        });
        let relay_id = sim.add_node(Box::new(relay), &[core_ip], link, link);
        let sink_id = sim.add_node(Box::new(Sink { got: vec![] }), &[edge_ip], link, link);
        let src = HostAddr::new(Ipv4Addr::new(10, 0, 0, 100), 10_500);
        sim.inject(
            SimTime::ZERO,
            Packet::new(src, HostAddr::new(core_ip, 13_250), vec![7u8; 64]),
        );
        // Unroutable port: counted, not forwarded.
        sim.inject(
            SimTime::ZERO,
            Packet::new(src, HostAddr::new(core_ip, 9), vec![1u8; 8]),
        );
        sim.run_until(SimTime::from_secs(1));
        let sink: &mut Sink = sim.node_mut(sink_id).unwrap();
        assert_eq!(sink.got.len(), 1);
        assert_eq!(sink.got[0].src, src, "relay is transparent to src");
        assert_eq!(sink.got[0].dst, HostAddr::new(edge_ip, 13_250));
        let relay: &mut RelayNode = sim.node_mut(relay_id).unwrap();
        assert_eq!(relay.stats.relayed_pkts, 1);
        assert_eq!(relay.stats.relayed_bytes, 64);
        assert_eq!(relay.stats.unroutable_pkts, 1);
    }
}
