//! The discrete-event simulator core: nodes, events, timers, routing.
//!
//! A [`Simulator`] owns boxed [`Node`]s and a time-ordered event queue.
//! Packets travel source-node → source uplink → destination downlink →
//! destination node (two queueing points, matching the uplink/downlink
//! model of §5.3). Nodes never touch each other directly; they interact
//! exclusively through packets and timers, which keeps the simulation
//! deterministic and lets the same client code run against either SFU
//! implementation (Scallop switch or the software baseline).

use crate::link::{Link, LinkConfig, LinkVerdict};
use crate::packet::Packet;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDirection, TraceRecord, TraceSink};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Handle identifying a node inside a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (stable for the lifetime of the simulator).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque timer payload. Nodes encode their own meaning (e.g. "RTCP
/// interval", "encoder tick") in the integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Behaviour plugged into the simulator.
///
/// `Any` is a supertrait so harnesses can downcast nodes for inspection
/// between simulation runs (`Simulator::node_mut`).
pub trait Node: Any {
    /// A packet addressed to one of this node's IPs arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A previously scheduled timer fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken);

    /// Called once when the node is added, with its id and the start time.
    /// Nodes typically schedule their first timers here.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// The node-facing API surface for interacting with the world.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: NodeId,
    rng: &'a mut DetRng,
    outbox: &'a mut Vec<Packet>,
    timers: &'a mut Vec<(SimTime, TimerToken)>,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being invoked.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Send a packet. It departs through this node's uplink at the current
    /// time and is routed to the node owning `pkt.dst.ip`.
    pub fn send(&mut self, pkt: Packet) {
        self.outbox.push(pkt);
    }

    /// Schedule a timer for this node `after` from now.
    pub fn schedule(&mut self, after: SimDuration, token: TimerToken) {
        self.timers.push((self.now + after, token));
    }

    /// Deterministic randomness (shared stream, draws are part of the
    /// simulation's reproducible state).
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }
}

#[derive(Debug)]
enum EventKind {
    /// Deliver a packet into a node (it already traversed both links).
    Deliver { dst: NodeId, pkt: Packet },
    /// A packet finished the source uplink; offer it to the destination
    /// downlink at this time.
    DownlinkAdmit { dst: NodeId, pkt: Packet },
    /// Fire a node timer.
    Timer { node: NodeId, token: TimerToken },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap, we need earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeSlot {
    node: Option<Box<dyn Node>>,
    uplink: Link,
    downlink: Link,
}

/// Statistics for a whole simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Packets delivered to nodes.
    pub packets_delivered: u64,
    /// Packets dropped on any link.
    pub packets_dropped: u64,
    /// Packets sent to addresses no node owns.
    pub packets_unroutable: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    nodes: Vec<NodeSlot>,
    routes: HashMap<Ipv4Addr, NodeId>,
    queue: BinaryHeap<Event>,
    now: SimTime,
    seq: u64,
    rng: DetRng,
    /// Run-level statistics.
    pub stats: SimStats,
    /// Optional packet trace capture (records every node delivery).
    pub trace: TraceSink,
}

impl Simulator {
    /// Create a simulator with the given seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            routes: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: DetRng::new(seed),
            stats: SimStats::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a node with the given access-link pair and owned IPs. The node's
    /// `on_start` runs immediately.
    pub fn add_node(
        &mut self,
        node: Box<dyn Node>,
        ips: &[Ipv4Addr],
        uplink: LinkConfig,
        downlink: LinkConfig,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot {
            node: Some(node),
            uplink: Link::new(uplink),
            downlink: Link::new(downlink),
        });
        for ip in ips {
            let prev = self.routes.insert(*ip, id);
            assert!(prev.is_none(), "IP {ip} already owned by another node");
        }
        self.invoke(id, |node, ctx| node.on_start(ctx));
        id
    }

    /// Register an additional IP for an existing node.
    pub fn add_route(&mut self, ip: Ipv4Addr, node: NodeId) {
        let prev = self.routes.insert(ip, node);
        assert!(prev.is_none(), "IP {ip} already owned by another node");
    }

    /// Look up which node owns an IP.
    pub fn route(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.routes.get(&ip).copied()
    }

    /// Mutable access to a node, downcast to its concrete type. Panics if
    /// the id is invalid; returns `None` on type mismatch.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let slot = self.nodes.get_mut(id.0).expect("invalid NodeId");
        let node = slot.node.as_mut().expect("node is being invoked");
        (node.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Mutable access to a node's uplink (for mid-run impairment changes).
    pub fn uplink_mut(&mut self, id: NodeId) -> &mut Link {
        &mut self.nodes[id.0].uplink
    }

    /// Mutable access to a node's downlink.
    pub fn downlink_mut(&mut self, id: NodeId) -> &mut Link {
        &mut self.nodes[id.0].downlink
    }

    /// Inject a packet into the network "from outside" (it still traverses
    /// the destination's downlink). Useful for trace replay.
    pub fn inject(&mut self, at: SimTime, pkt: Packet) {
        let at = at.max(self.now);
        if let Some(dst) = self.route(pkt.dst.ip) {
            self.push(at, EventKind::DownlinkAdmit { dst, pkt });
        } else {
            self.stats.packets_unroutable += 1;
        }
    }

    /// Schedule a timer for a node from outside the simulation.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: TimerToken) {
        let at = at.max(self.now);
        self.push(at, EventKind::Timer { node, token });
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Run node code with a context, then process its side effects.
    fn invoke<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Node>, &mut Ctx<'_>),
    {
        let mut node = self.nodes[id.0]
            .node
            .take()
            .expect("re-entrant node invocation");
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                rng: &mut self.rng,
                outbox: &mut outbox,
                timers: &mut timers,
            };
            f(&mut node, &mut ctx);
        }
        self.nodes[id.0].node = Some(node);
        for (at, token) in timers {
            self.push(at, EventKind::Timer { node: id, token });
        }
        for pkt in outbox {
            self.transmit(id, pkt);
        }
    }

    /// Route a packet out of `src_node` through its uplink.
    fn transmit(&mut self, src_node: NodeId, pkt: Packet) {
        let Some(dst) = self.route(pkt.dst.ip) else {
            self.stats.packets_unroutable += 1;
            return;
        };
        let wire = pkt.wire_len();
        let now = self.now;
        let verdict = self.nodes[src_node.0]
            .uplink
            .offer(now, wire, &mut self.rng);
        match verdict {
            LinkVerdict::Deliver { at, duplicate_at } => {
                self.push(
                    at,
                    EventKind::DownlinkAdmit {
                        dst,
                        pkt: pkt.clone(),
                    },
                );
                if let Some(dup_at) = duplicate_at {
                    self.push(dup_at, EventKind::DownlinkAdmit { dst, pkt });
                }
            }
            LinkVerdict::Drop(_) => {
                self.stats.packets_dropped += 1;
            }
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.stats.events += 1;
        match ev.kind {
            EventKind::Timer { node, token } => {
                self.invoke(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::DownlinkAdmit { dst, pkt } => {
                let wire = pkt.wire_len();
                let now = self.now;
                let verdict = self.nodes[dst.0].downlink.offer(now, wire, &mut self.rng);
                match verdict {
                    LinkVerdict::Deliver { at, duplicate_at } => {
                        self.push(
                            at,
                            EventKind::Deliver {
                                dst,
                                pkt: pkt.clone(),
                            },
                        );
                        if let Some(dup_at) = duplicate_at {
                            self.push(dup_at, EventKind::Deliver { dst, pkt });
                        }
                    }
                    LinkVerdict::Drop(_) => {
                        self.stats.packets_dropped += 1;
                    }
                }
            }
            EventKind::Deliver { dst, pkt } => {
                self.stats.packets_delivered += 1;
                self.trace.record(TraceRecord {
                    at: self.now,
                    src: pkt.src,
                    dst: pkt.dst,
                    payload_bytes: pkt.payload_len(),
                    wire_bytes: pkt.wire_len(),
                    direction: TraceDirection::Delivered,
                });
                self.invoke(dst, |n, ctx| n.on_packet(ctx, pkt));
            }
        }
        true
    }

    /// Run until the queue drains or `deadline` is reached. The clock is
    /// left at `min(deadline, time of last event)`; events at exactly
    /// `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Number of events waiting.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::packet::HostAddr;

    /// Echoes every packet back to its source and counts deliveries.
    struct Echo {
        port: u16,
        received: u32,
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.received += 1;
            if pkt.dst.port == self.port {
                ctx.send(pkt.readdressed(pkt.dst, pkt.src));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerToken) {}
    }

    /// Sends `n` packets to a target on start, recording echo arrival times.
    struct Pinger {
        target: HostAddr,
        me: HostAddr,
        n: u32,
        echoes: Vec<SimTime>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.echoes.push(ctx.now());
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerToken) {
            for _ in 0..self.n {
                ctx.send(Packet::new(self.me, self.target, vec![0u8; 100]));
            }
        }
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn two_node_sim(seed: u64, up: LinkConfig, down: LinkConfig) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let echo = sim.add_node(
            Box::new(Echo {
                port: 5000,
                received: 0,
            }),
            &[ip(2)],
            up,
            down,
        );
        let pinger = sim.add_node(
            Box::new(Pinger {
                target: HostAddr::new(ip(2), 5000),
                me: HostAddr::new(ip(1), 4000),
                n: 3,
                echoes: vec![],
            }),
            &[ip(1)],
            up,
            down,
        );
        (sim, echo, pinger)
    }

    #[test]
    fn ping_pong_round_trip() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let (mut sim, echo, pinger) = two_node_sim(1, cfg, cfg);
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 3);
        let p: &mut Pinger = sim.node_mut(pinger).unwrap();
        assert_eq!(p.echoes.len(), 3);
        // RTT = 4 hops × 5 ms = 20 ms after the 1 ms send timer.
        assert_eq!(p.echoes[0], SimTime::from_millis(21));
    }

    #[test]
    fn lossy_uplink_drops_everything() {
        let lossy = LinkConfig::infinite(SimDuration::from_millis(1))
            .with_faults(FaultConfig::clean().with_loss(1.0));
        let clean = LinkConfig::infinite(SimDuration::from_millis(1));
        let mut sim = Simulator::new(2);
        let echo = sim.add_node(
            Box::new(Echo {
                port: 5000,
                received: 0,
            }),
            &[ip(2)],
            clean,
            clean,
        );
        let _pinger = sim.add_node(
            Box::new(Pinger {
                target: HostAddr::new(ip(2), 5000),
                me: HostAddr::new(ip(1), 4000),
                n: 5,
                echoes: vec![],
            }),
            &[ip(1)],
            lossy,
            clean,
        );
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 0);
        assert_eq!(sim.stats.packets_dropped, 5);
    }

    #[test]
    fn unroutable_counted() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(1));
        let mut sim = Simulator::new(3);
        let _pinger = sim.add_node(
            Box::new(Pinger {
                target: HostAddr::new(ip(99), 5000), // nobody owns 10.0.0.99
                me: HostAddr::new(ip(1), 4000),
                n: 2,
                echoes: vec![],
            }),
            &[ip(1)],
            cfg,
            cfg,
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.packets_unroutable, 2);
    }

    #[test]
    fn determinism_across_runs() {
        let up = LinkConfig::infinite(SimDuration::from_millis(3))
            .with_rate(2_000_000)
            .with_faults(FaultConfig::clean().with_loss(0.3));
        let down = LinkConfig::infinite(SimDuration::from_millis(2)).with_rate(4_000_000);
        let run = || {
            let (mut sim, _echo, pinger) = two_node_sim(42, up, down);
            sim.run_until(SimTime::from_secs(2));
            let p: &mut Pinger = sim.node_mut(pinger).unwrap();
            (p.echoes.clone(), sim.stats.events)
        };
        let (a, ea) = run();
        let (b, eb) = run();
        assert_eq!(a, b);
        assert_eq!(ea, eb);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Simulator::new(4);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn injected_packet_is_delivered() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(1));
        let mut sim = Simulator::new(5);
        let echo = sim.add_node(
            Box::new(Echo {
                port: 5000,
                received: 0,
            }),
            &[ip(2)],
            cfg,
            cfg,
        );
        sim.inject(
            SimTime::from_millis(10),
            Packet::new(
                HostAddr::new(ip(50), 1),
                HostAddr::new(ip(2), 5000),
                vec![1, 2, 3],
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 1);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn duplicate_ip_panics() {
        let cfg = LinkConfig::infinite(SimDuration::ZERO);
        let mut sim = Simulator::new(6);
        let mk = || {
            Box::new(Echo {
                port: 1,
                received: 0,
            })
        };
        sim.add_node(mk(), &[ip(1)], cfg, cfg);
        sim.add_node(mk(), &[ip(1)], cfg, cfg);
    }
}
