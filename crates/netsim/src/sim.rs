//! The discrete-event simulator core: nodes, events, timers, routing.
//!
//! A [`Simulator`] owns boxed [`Node`]s and a time-ordered event queue.
//! Packets travel source-node → source uplink → destination downlink →
//! destination node (two queueing points, matching the uplink/downlink
//! model of §5.3). Nodes never touch each other directly; they interact
//! exclusively through packets and timers, which keeps the simulation
//! deterministic and lets the same client code run against either SFU
//! implementation (Scallop switch or the software baseline).

use crate::link::{Link, LinkConfig, LinkVerdict};
use crate::packet::Packet;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDirection, TraceRecord, TraceSink};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Handle identifying a node inside a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (stable for the lifetime of the simulator).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque timer payload. Nodes encode their own meaning (e.g. "RTCP
/// interval", "encoder tick") in the integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Behaviour plugged into the simulator.
///
/// `Any` is a supertrait so harnesses can downcast nodes for inspection
/// between simulation runs (`Simulator::node_mut`); `Send` so
/// [`parallel_safe`](Node::parallel_safe) nodes can be stepped on worker
/// threads behind the deterministic wave barrier.
pub trait Node: Any + Send {
    /// A packet addressed to one of this node's IPs arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A previously scheduled timer fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: TimerToken);

    /// Called once when the node is added, with its id and the start time.
    /// Nodes typically schedule their first timers here.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A burst of packets all delivered at the same instant. Only called
    /// for [`parallel_safe`](Node::parallel_safe) nodes; the default
    /// replays the per-packet path, so batching is purely an
    /// optimization hook.
    fn on_batch(&mut self, ctx: &mut Ctx<'_>, pkts: Vec<Packet>) {
        for pkt in pkts {
            self.on_packet(ctx, pkt);
        }
    }

    /// Opt into same-instant delivery batching (and, when the simulator
    /// runs multi-worker, parallel stepping). A node may return `true`
    /// only if its packet handling (a) never calls [`Ctx::send`] from
    /// `on_packet`/`on_batch` — emission must go through timers — and
    /// (b) never draws from [`Ctx::rng`] there. Those two rules are what
    /// make batched delivery (and the worker barrier) event-for-event
    /// identical to sequential delivery.
    fn parallel_safe(&self) -> bool {
        false
    }
}

/// The node-facing API surface for interacting with the world.
pub struct Ctx<'a> {
    now: SimTime,
    self_id: NodeId,
    /// `None` while stepping a parallel batch: the shared deterministic
    /// stream cannot be split across workers.
    rng: Option<&'a mut DetRng>,
    outbox: &'a mut Vec<Packet>,
    timers: &'a mut Vec<(SimTime, TimerToken)>,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being invoked.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Send a packet. It departs through this node's uplink at the current
    /// time and is routed to the node owning `pkt.dst.ip`.
    pub fn send(&mut self, pkt: Packet) {
        self.outbox.push(pkt);
    }

    /// Schedule a timer for this node `after` from now.
    pub fn schedule(&mut self, after: SimDuration, token: TimerToken) {
        self.timers.push((self.now + after, token));
    }

    /// Deterministic randomness (shared stream, draws are part of the
    /// simulation's reproducible state). Panics inside a parallel batch:
    /// [`Node::parallel_safe`] nodes promised not to draw.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
            .as_deref_mut()
            .expect("ctx.rng() is unavailable in a batched wave: parallel_safe nodes must not draw randomness")
    }
}

#[derive(Debug)]
enum EventKind {
    /// Deliver a packet into a node (it already traversed both links).
    Deliver { dst: NodeId, pkt: Packet },
    /// A packet finished the source uplink; offer it to the destination
    /// downlink at this time.
    DownlinkAdmit { dst: NodeId, pkt: Packet },
    /// Fire a node timer.
    Timer { node: NodeId, token: TimerToken },
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    // Reversed: BinaryHeap is a max-heap, we need earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeSlot {
    node: Option<Box<dyn Node>>,
    uplink: Link,
    downlink: Link,
    /// Cached [`Node::parallel_safe`] (consulted on every delivery).
    parallel_safe: bool,
    /// Fail-stopped by [`Simulator::kill_node`]: every event addressed
    /// to this node is discarded at pop time until a revive.
    dead: bool,
}

/// One node's share of a delivery wave: its batch of same-instant
/// packets plus the private side-effect buffers its `on_batch` fills.
/// Jobs are farmed to worker threads; effects are applied afterwards in
/// pop order, which is what keeps N-worker runs bit-identical to
/// single-worker ones.
struct WaveJob {
    id: NodeId,
    node: Box<dyn Node>,
    pkts: Vec<Packet>,
    outbox: Vec<Packet>,
    timers: Vec<(SimTime, TimerToken)>,
}

impl WaveJob {
    fn run(&mut self, now: SimTime) {
        let mut ctx = Ctx {
            now,
            self_id: self.id,
            rng: None,
            outbox: &mut self.outbox,
            timers: &mut self.timers,
        };
        self.node.on_batch(&mut ctx, std::mem::take(&mut self.pkts));
    }
}

/// Read the worker count from `SCALLOP_WORKERS` (default 1). Harnesses
/// and benches call this so one environment variable turns on the
/// multi-worker edge mode everywhere.
pub fn workers_from_env() -> usize {
    match std::env::var("SCALLOP_WORKERS") {
        Err(_) => 1,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("SCALLOP_WORKERS must be a positive integer, got {raw:?}"),
        },
    }
}

/// Statistics for a whole simulation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Packets delivered to nodes.
    pub packets_delivered: u64,
    /// Packets dropped on any link.
    pub packets_dropped: u64,
    /// Packets sent to addresses no node owns.
    pub packets_unroutable: u64,
    /// Packets discarded by fail-stop injection: addressed to a killed
    /// node, across a cut link, or across a partition boundary.
    pub packets_failstopped: u64,
}

/// The discrete-event simulator.
pub struct Simulator {
    nodes: Vec<NodeSlot>,
    routes: HashMap<Ipv4Addr, NodeId>,
    queue: BinaryHeap<Event>,
    now: SimTime,
    seq: u64,
    rng: DetRng,
    /// Worker threads for stepping `parallel_safe` node batches (1 =
    /// in-place, no threads).
    workers: usize,
    /// Fail-stopped link pairs (normalized lower index first): packets
    /// between the two nodes are discarded at transmit time.
    cuts: std::collections::HashSet<(usize, usize)>,
    /// Node indices on the minority side of an active partition; empty
    /// means no partition. Packets crossing the boundary are discarded.
    partitioned: std::collections::HashSet<usize>,
    /// Run-level statistics.
    pub stats: SimStats,
    /// Optional packet trace capture (records every node delivery).
    pub trace: TraceSink,
}

impl Simulator {
    /// Create a simulator with the given seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            routes: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: DetRng::new(seed),
            workers: 1,
            cuts: std::collections::HashSet::new(),
            partitioned: std::collections::HashSet::new(),
            stats: SimStats::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Set the worker-thread count for batched waves. Any `n` produces
    /// bit-identical runs (side effects are applied in pop order at the
    /// wave barrier); `n > 1` merely steps independent edge switches
    /// concurrently.
    pub fn set_workers(&mut self, n: usize) {
        assert!(n >= 1, "worker count must be at least 1");
        self.workers = n;
    }

    /// Current worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Add a node with the given access-link pair and owned IPs. The node's
    /// `on_start` runs immediately.
    pub fn add_node(
        &mut self,
        node: Box<dyn Node>,
        ips: &[Ipv4Addr],
        uplink: LinkConfig,
        downlink: LinkConfig,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        let parallel_safe = node.parallel_safe();
        self.nodes.push(NodeSlot {
            node: Some(node),
            uplink: Link::new(uplink),
            downlink: Link::new(downlink),
            parallel_safe,
            dead: false,
        });
        for ip in ips {
            let prev = self.routes.insert(*ip, id);
            assert!(prev.is_none(), "IP {ip} already owned by another node");
        }
        self.invoke(id, |node, ctx| node.on_start(ctx));
        id
    }

    /// Register an additional IP for an existing node.
    pub fn add_route(&mut self, ip: Ipv4Addr, node: NodeId) {
        let prev = self.routes.insert(ip, node);
        assert!(prev.is_none(), "IP {ip} already owned by another node");
    }

    /// Look up which node owns an IP.
    pub fn route(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.routes.get(&ip).copied()
    }

    /// Mutable access to a node, downcast to its concrete type. Panics if
    /// the id is invalid; returns `None` on type mismatch.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let slot = self.nodes.get_mut(id.0).expect("invalid NodeId");
        let node = slot.node.as_mut().expect("node is being invoked");
        (node.as_mut() as &mut dyn Any).downcast_mut::<T>()
    }

    /// Mutable access to a node's uplink (for mid-run impairment changes).
    pub fn uplink_mut(&mut self, id: NodeId) -> &mut Link {
        &mut self.nodes[id.0].uplink
    }

    /// Mutable access to a node's downlink.
    pub fn downlink_mut(&mut self, id: NodeId) -> &mut Link {
        &mut self.nodes[id.0].downlink
    }

    /// Fail-stop a node at the current tick. The node's queued and
    /// future events (packets *and* timers) are discarded at pop time,
    /// so it stops consuming, emitting, and counting immediately — its
    /// state is frozen, not destroyed, and stays inspectable through
    /// [`Simulator::node_mut`]. A run that never kills anything is
    /// event-for-event identical to one built without this API: the
    /// check is a flag read, with no RNG draws and no re-ordering.
    pub fn kill_node(&mut self, id: NodeId) {
        self.nodes[id.0].dead = true;
    }

    /// Undo [`Simulator::kill_node`]: the node receives traffic again.
    /// Events discarded while dead are gone forever — in particular a
    /// self-rescheduling timer chain broken by the kill does not
    /// restart, so reviving is only transparent for purely reactive
    /// nodes (e.g. relays); stateful switches need control-plane
    /// re-admission on top.
    pub fn revive_node(&mut self, id: NodeId) {
        self.nodes[id.0].dead = false;
    }

    /// Whether `id` is currently fail-stopped.
    pub fn node_is_dead(&self, id: NodeId) -> bool {
        self.nodes[id.0].dead
    }

    /// Cut the (bidirectional) path between two nodes: packets offered
    /// in either direction are discarded at transmit time. Packets
    /// already in flight still arrive — a cut severs the wire, it does
    /// not recall what left before the cut. Both endpoints stay alive.
    pub fn cut_link(&mut self, a: NodeId, b: NodeId) {
        self.cuts.insert(Self::pair_key(a, b));
    }

    /// Undo [`Simulator::cut_link`] for the pair.
    pub fn restore_link(&mut self, a: NodeId, b: NodeId) {
        self.cuts.remove(&Self::pair_key(a, b));
    }

    /// Whether the pair's path is currently cut.
    pub fn link_is_cut(&self, a: NodeId, b: NodeId) -> bool {
        self.cuts.contains(&Self::pair_key(a, b))
    }

    /// Partition `group` away from every other node: packets crossing
    /// the boundary (either direction) are discarded at transmit time,
    /// while traffic wholly inside or wholly outside the group flows
    /// normally. Replaces any previous partition; an empty group heals.
    pub fn partition(&mut self, group: &[NodeId]) {
        self.partitioned = group.iter().map(|id| id.0).collect();
    }

    /// Heal the active partition (equivalent to `partition(&[])`).
    pub fn heal_partition(&mut self) {
        self.partitioned.clear();
    }

    fn pair_key(a: NodeId, b: NodeId) -> (usize, usize) {
        if a.0 <= b.0 {
            (a.0, b.0)
        } else {
            (b.0, a.0)
        }
    }

    /// Whether a packet from `src` to `dst` is discarded by an active
    /// fail-stop injection (dead destination, cut pair, or partition
    /// boundary crossing).
    fn failstopped(&self, src: NodeId, dst: NodeId) -> bool {
        self.nodes[dst.0].dead
            || (!self.cuts.is_empty() && self.cuts.contains(&Self::pair_key(src, dst)))
            || (!self.partitioned.is_empty()
                && self.partitioned.contains(&src.0) != self.partitioned.contains(&dst.0))
    }

    /// Inject a packet into the network "from outside" (it still traverses
    /// the destination's downlink). Useful for trace replay.
    pub fn inject(&mut self, at: SimTime, pkt: Packet) {
        let at = at.max(self.now);
        if let Some(dst) = self.route(pkt.dst.ip) {
            self.push(at, EventKind::DownlinkAdmit { dst, pkt });
        } else {
            self.stats.packets_unroutable += 1;
        }
    }

    /// Schedule a timer for a node from outside the simulation.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: TimerToken) {
        let at = at.max(self.now);
        self.push(at, EventKind::Timer { node, token });
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.queue.push(Event {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Run node code with a context, then process its side effects.
    fn invoke<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut Box<dyn Node>, &mut Ctx<'_>),
    {
        let mut node = self.nodes[id.0]
            .node
            .take()
            .expect("re-entrant node invocation");
        let mut outbox = Vec::new();
        let mut timers = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                rng: Some(&mut self.rng),
                outbox: &mut outbox,
                timers: &mut timers,
            };
            f(&mut node, &mut ctx);
        }
        self.nodes[id.0].node = Some(node);
        for (at, token) in timers {
            self.push(at, EventKind::Timer { node: id, token });
        }
        for pkt in outbox {
            self.transmit(id, pkt);
        }
    }

    /// Route a packet out of `src_node` through its uplink.
    fn transmit(&mut self, src_node: NodeId, pkt: Packet) {
        let Some(dst) = self.route(pkt.dst.ip) else {
            self.stats.packets_unroutable += 1;
            return;
        };
        if self.failstopped(src_node, dst) {
            self.stats.packets_failstopped += 1;
            return;
        }
        let wire = pkt.wire_len();
        let now = self.now;
        let verdict = self.nodes[src_node.0]
            .uplink
            .offer(now, wire, &mut self.rng);
        match verdict {
            // The packet is moved on the common (no-duplicate) path and
            // cloned only when the link actually schedules a duplicate;
            // the primary is always pushed first so event sequencing is
            // unchanged.
            LinkVerdict::Deliver {
                at,
                duplicate_at: Some(dup_at),
            } => {
                self.push(
                    at,
                    EventKind::DownlinkAdmit {
                        dst,
                        pkt: pkt.clone(),
                    },
                );
                self.push(dup_at, EventKind::DownlinkAdmit { dst, pkt });
            }
            LinkVerdict::Deliver {
                at,
                duplicate_at: None,
            } => {
                self.push(at, EventKind::DownlinkAdmit { dst, pkt });
            }
            LinkVerdict::Drop(_) => {
                self.stats.packets_dropped += 1;
            }
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        self.stats.events += 1;
        match ev.kind {
            EventKind::Timer { node, token } => {
                if self.nodes[node.0].dead {
                    return true;
                }
                self.invoke(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::DownlinkAdmit { dst, pkt } => {
                if self.nodes[dst.0].dead {
                    self.stats.packets_failstopped += 1;
                    return true;
                }
                let wire = pkt.wire_len();
                let now = self.now;
                let verdict = self.nodes[dst.0].downlink.offer(now, wire, &mut self.rng);
                match verdict {
                    // Move unless a duplicate is actually scheduled
                    // (primary pushed first, as in `transmit`).
                    LinkVerdict::Deliver {
                        at,
                        duplicate_at: Some(dup_at),
                    } => {
                        self.push(
                            at,
                            EventKind::Deliver {
                                dst,
                                pkt: pkt.clone(),
                            },
                        );
                        self.push(dup_at, EventKind::Deliver { dst, pkt });
                    }
                    LinkVerdict::Deliver {
                        at,
                        duplicate_at: None,
                    } => {
                        self.push(at, EventKind::Deliver { dst, pkt });
                    }
                    LinkVerdict::Drop(_) => {
                        self.stats.packets_dropped += 1;
                    }
                }
            }
            EventKind::Deliver { dst, pkt } => {
                if self.nodes[dst.0].dead {
                    self.stats.packets_failstopped += 1;
                    return true;
                }
                self.record_delivery(&pkt);
                if self.nodes[dst.0].parallel_safe {
                    self.deliver_wave(dst, pkt);
                } else {
                    self.invoke(dst, |n, ctx| n.on_packet(ctx, pkt));
                }
            }
        }
        true
    }

    fn record_delivery(&mut self, pkt: &Packet) {
        self.stats.packets_delivered += 1;
        self.trace.record(TraceRecord {
            at: self.now,
            src: pkt.src,
            dst: pkt.dst,
            payload_bytes: pkt.payload_len(),
            wire_bytes: pkt.wire_len(),
            direction: TraceDirection::Delivered,
        });
    }

    /// Deliver a *wave*: the popped packet plus every consecutive
    /// queue-front `Deliver` event at the same instant whose target is
    /// `parallel_safe`, drained into per-node batches. Each node gets at
    /// most one batch per wave (a node reappearing after its batch
    /// closed ends the wave), node code runs with no access to the
    /// shared rng, and side effects are applied at the barrier in pop
    /// order — so the pushed event sequence, and therefore the whole
    /// run, is identical to per-packet delivery regardless of the
    /// worker count.
    fn deliver_wave(&mut self, first_dst: NodeId, first_pkt: Packet) {
        let at = self.now;
        let mut runs: Vec<(NodeId, Vec<Packet>)> = vec![(first_dst, vec![first_pkt])];
        loop {
            // Decide from the queue front whether the wave extends.
            let dst = match self.queue.peek() {
                Some(ev) if ev.at == at => match &ev.kind {
                    EventKind::Deliver { dst, .. }
                        if self.nodes[dst.0].parallel_safe && !self.nodes[dst.0].dead =>
                    {
                        let dst = *dst;
                        let open = runs.last().expect("wave is non-empty").0;
                        if dst == open || !runs.iter().any(|(n, _)| *n == dst) {
                            Some(dst)
                        } else {
                            None // second batch for a node: next wave
                        }
                    }
                    _ => None,
                },
                _ => None,
            };
            let Some(dst) = dst else { break };
            let ev = self.queue.pop().expect("peeked event vanished");
            self.stats.events += 1;
            let EventKind::Deliver { pkt, .. } = ev.kind else {
                unreachable!("peek/pop mismatch");
            };
            self.record_delivery(&pkt);
            let open = runs.last_mut().expect("wave is non-empty");
            if open.0 == dst {
                open.1.push(pkt);
            } else {
                runs.push((dst, vec![pkt]));
            }
        }
        let mut jobs: Vec<WaveJob> = runs
            .into_iter()
            .map(|(id, pkts)| WaveJob {
                id,
                node: self.nodes[id.0]
                    .node
                    .take()
                    .expect("re-entrant node invocation"),
                pkts,
                outbox: Vec::new(),
                timers: Vec::new(),
            })
            .collect();
        let now = self.now;
        let workers = self.workers.min(jobs.len());
        if workers <= 1 {
            for job in &mut jobs {
                job.run(now);
            }
        } else {
            let chunk = jobs.len().div_ceil(workers);
            std::thread::scope(|s| {
                for slice in jobs.chunks_mut(chunk) {
                    s.spawn(move || {
                        for job in slice {
                            job.run(now);
                        }
                    });
                }
            });
        }
        // Barrier: restore nodes, then apply side effects in pop order
        // (timers before sends, exactly like `invoke`).
        for job in jobs {
            self.nodes[job.id.0].node = Some(job.node);
            for (at, token) in job.timers {
                self.push(
                    at,
                    EventKind::Timer {
                        node: job.id,
                        token,
                    },
                );
            }
            for pkt in job.outbox {
                self.transmit(job.id, pkt);
            }
        }
    }

    /// Run until the queue drains or `deadline` is reached. The clock is
    /// left at `min(deadline, time of last event)`; events at exactly
    /// `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Number of events waiting.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::packet::HostAddr;

    /// Echoes every packet back to its source and counts deliveries.
    struct Echo {
        port: u16,
        received: u32,
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.received += 1;
            if pkt.dst.port == self.port {
                ctx.send(pkt.readdressed(pkt.dst, pkt.src));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _timer: TimerToken) {}
    }

    /// Sends `n` packets to a target on start, recording echo arrival times.
    struct Pinger {
        target: HostAddr,
        me: HostAddr,
        n: u32,
        echoes: Vec<SimTime>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.echoes.push(ctx.now());
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerToken) {
            for _ in 0..self.n {
                ctx.send(Packet::new(self.me, self.target, vec![0u8; 100]));
            }
        }
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn two_node_sim(seed: u64, up: LinkConfig, down: LinkConfig) -> (Simulator, NodeId, NodeId) {
        let mut sim = Simulator::new(seed);
        let echo = sim.add_node(
            Box::new(Echo {
                port: 5000,
                received: 0,
            }),
            &[ip(2)],
            up,
            down,
        );
        let pinger = sim.add_node(
            Box::new(Pinger {
                target: HostAddr::new(ip(2), 5000),
                me: HostAddr::new(ip(1), 4000),
                n: 3,
                echoes: vec![],
            }),
            &[ip(1)],
            up,
            down,
        );
        (sim, echo, pinger)
    }

    #[test]
    fn ping_pong_round_trip() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let (mut sim, echo, pinger) = two_node_sim(1, cfg, cfg);
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 3);
        let p: &mut Pinger = sim.node_mut(pinger).unwrap();
        assert_eq!(p.echoes.len(), 3);
        // RTT = 4 hops × 5 ms = 20 ms after the 1 ms send timer.
        assert_eq!(p.echoes[0], SimTime::from_millis(21));
    }

    #[test]
    fn lossy_uplink_drops_everything() {
        let lossy = LinkConfig::infinite(SimDuration::from_millis(1))
            .with_faults(FaultConfig::clean().with_loss(1.0));
        let clean = LinkConfig::infinite(SimDuration::from_millis(1));
        let mut sim = Simulator::new(2);
        let echo = sim.add_node(
            Box::new(Echo {
                port: 5000,
                received: 0,
            }),
            &[ip(2)],
            clean,
            clean,
        );
        let _pinger = sim.add_node(
            Box::new(Pinger {
                target: HostAddr::new(ip(2), 5000),
                me: HostAddr::new(ip(1), 4000),
                n: 5,
                echoes: vec![],
            }),
            &[ip(1)],
            lossy,
            clean,
        );
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 0);
        assert_eq!(sim.stats.packets_dropped, 5);
    }

    #[test]
    fn unroutable_counted() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(1));
        let mut sim = Simulator::new(3);
        let _pinger = sim.add_node(
            Box::new(Pinger {
                target: HostAddr::new(ip(99), 5000), // nobody owns 10.0.0.99
                me: HostAddr::new(ip(1), 4000),
                n: 2,
                echoes: vec![],
            }),
            &[ip(1)],
            cfg,
            cfg,
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats.packets_unroutable, 2);
    }

    #[test]
    fn determinism_across_runs() {
        let up = LinkConfig::infinite(SimDuration::from_millis(3))
            .with_rate(2_000_000)
            .with_faults(FaultConfig::clean().with_loss(0.3));
        let down = LinkConfig::infinite(SimDuration::from_millis(2)).with_rate(4_000_000);
        let run = || {
            let (mut sim, _echo, pinger) = two_node_sim(42, up, down);
            sim.run_until(SimTime::from_secs(2));
            let p: &mut Pinger = sim.node_mut(pinger).unwrap();
            (p.echoes.clone(), sim.stats.events)
        };
        let (a, ea) = run();
        let (b, eb) = run();
        assert_eq!(a, b);
        assert_eq!(ea, eb);
    }

    /// Parallel-safe echo: batches same-instant deliveries, stages the
    /// replies, and emits them from a flush timer (the only legal
    /// emission path for `parallel_safe` nodes).
    struct BatchEcho {
        staged: Vec<Packet>,
        batch_sizes: Vec<usize>,
    }

    impl Node for BatchEcho {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.staged.push(pkt.readdressed(pkt.dst, pkt.src));
            ctx.schedule(SimDuration::from_micros(10), TimerToken(1));
        }
        fn on_batch(&mut self, ctx: &mut Ctx<'_>, pkts: Vec<Packet>) {
            self.batch_sizes.push(pkts.len());
            for pkt in pkts {
                self.on_packet(ctx, pkt);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerToken) {
            for pkt in self.staged.drain(..) {
                ctx.send(pkt);
            }
        }
        fn parallel_safe(&self) -> bool {
            true
        }
    }

    /// Sends 3 packets to each of two batch echoes in one burst.
    struct Burster {
        me: HostAddr,
        targets: Vec<HostAddr>,
        echoes: Vec<(SimTime, HostAddr)>,
    }

    impl Node for Burster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.echoes.push((ctx.now(), pkt.src));
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _timer: TimerToken) {
            for &t in &self.targets {
                for _ in 0..3 {
                    ctx.send(Packet::new(self.me, t, vec![0u8; 64]));
                }
            }
        }
    }

    #[test]
    fn waves_batch_same_instant_deliveries_identically_across_workers() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(2));
        let run = |workers: usize| {
            let mut sim = Simulator::new(7);
            sim.set_workers(workers);
            let mk = || {
                Box::new(BatchEcho {
                    staged: vec![],
                    batch_sizes: vec![],
                })
            };
            let a = sim.add_node(mk(), &[ip(2)], cfg, cfg);
            let b = sim.add_node(mk(), &[ip(3)], cfg, cfg);
            let burster = sim.add_node(
                Box::new(Burster {
                    me: HostAddr::new(ip(1), 4000),
                    targets: vec![HostAddr::new(ip(2), 5000), HostAddr::new(ip(3), 5000)],
                    echoes: vec![],
                }),
                &[ip(1)],
                cfg,
                cfg,
            );
            sim.run_until(SimTime::from_secs(1));
            let sizes_a = sim.node_mut::<BatchEcho>(a).unwrap().batch_sizes.clone();
            let sizes_b = sim.node_mut::<BatchEcho>(b).unwrap().batch_sizes.clone();
            let echoes = sim.node_mut::<Burster>(burster).unwrap().echoes.clone();
            (sizes_a, sizes_b, echoes, sim.stats.events)
        };
        let (a1, b1, e1, ev1) = run(1);
        assert_eq!(a1, vec![3], "burst to one node arrives as one batch");
        assert_eq!(b1, vec![3]);
        assert_eq!(e1.len(), 6, "all replies make it back");
        for workers in [2, 4] {
            let (a, b, e, ev) = run(workers);
            assert_eq!((a, b, e, ev), (a1.clone(), b1.clone(), e1.clone(), ev1));
        }
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Simulator::new(4);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn injected_packet_is_delivered() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(1));
        let mut sim = Simulator::new(5);
        let echo = sim.add_node(
            Box::new(Echo {
                port: 5000,
                received: 0,
            }),
            &[ip(2)],
            cfg,
            cfg,
        );
        sim.inject(
            SimTime::from_millis(10),
            Packet::new(
                HostAddr::new(ip(50), 1),
                HostAddr::new(ip(2), 5000),
                vec![1, 2, 3],
            ),
        );
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 1);
    }

    #[test]
    fn killed_node_failstops_traffic_and_timers() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let (mut sim, echo, pinger) = two_node_sim(8, cfg, cfg);
        sim.kill_node(echo);
        assert!(sim.node_is_dead(echo));
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 0, "dead node consumes nothing");
        let p: &mut Pinger = sim.node_mut(pinger).unwrap();
        assert!(p.echoes.is_empty(), "dead node emits nothing");
        assert_eq!(sim.stats.packets_failstopped, 3);
        assert_eq!(sim.stats.packets_dropped, 0, "fail-stop is not link loss");
    }

    #[test]
    fn revive_restores_delivery_for_reactive_nodes() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let (mut sim, echo, _pinger) = two_node_sim(9, cfg, cfg);
        sim.kill_node(echo);
        sim.run_until(SimTime::from_secs(1));
        sim.revive_node(echo);
        assert!(!sim.node_is_dead(echo));
        // A fresh packet injected after the revive is delivered.
        sim.inject(
            SimTime::from_secs(2),
            Packet::new(
                HostAddr::new(ip(50), 1),
                HostAddr::new(ip(2), 5000),
                vec![0u8; 10],
            ),
        );
        sim.run_until(SimTime::from_secs(3));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 1);
    }

    #[test]
    fn cut_link_discards_both_directions_until_restored() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let (mut sim, echo, pinger) = two_node_sim(10, cfg, cfg);
        sim.cut_link(pinger, echo);
        assert!(sim.link_is_cut(echo, pinger), "cut is order-insensitive");
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 0);
        assert_eq!(sim.stats.packets_failstopped, 3);
        sim.restore_link(echo, pinger);
        sim.inject(
            SimTime::from_secs(2),
            Packet::new(
                HostAddr::new(ip(1), 4000),
                HostAddr::new(ip(2), 5000),
                vec![0u8; 10],
            ),
        );
        sim.run_until(SimTime::from_secs(3));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 1, "restored pair carries traffic again");
    }

    #[test]
    fn partition_blocks_only_boundary_crossings() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let (mut sim, echo, _pinger) = two_node_sim(11, cfg, cfg);
        sim.partition(&[echo]);
        sim.run_until(SimTime::from_secs(1));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 0);
        assert_eq!(sim.stats.packets_failstopped, 3);
        sim.heal_partition();
        sim.inject(
            SimTime::from_secs(2),
            Packet::new(
                HostAddr::new(ip(1), 4000),
                HostAddr::new(ip(2), 5000),
                vec![0u8; 10],
            ),
        );
        sim.run_until(SimTime::from_secs(3));
        let e: &mut Echo = sim.node_mut(echo).unwrap();
        assert_eq!(e.received, 1, "healed partition carries traffic again");
    }

    #[test]
    fn no_fault_run_is_identical_with_inactive_failstop_state() {
        let cfg = LinkConfig::infinite(SimDuration::from_millis(5));
        let run = |touch: bool| {
            let (mut sim, _echo, pinger) = two_node_sim(12, cfg, cfg);
            if touch {
                // Install and immediately remove injections: inactive
                // fail-stop state must not perturb the run.
                sim.cut_link(pinger, NodeId(0));
                sim.restore_link(pinger, NodeId(0));
                sim.partition(&[pinger]);
                sim.heal_partition();
            }
            sim.run_until(SimTime::from_secs(1));
            let p: &mut Pinger = sim.node_mut(pinger).unwrap();
            (p.echoes.clone(), sim.stats.events)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn duplicate_ip_panics() {
        let cfg = LinkConfig::infinite(SimDuration::ZERO);
        let mut sim = Simulator::new(6);
        let mk = || {
            Box::new(Echo {
                port: 1,
                received: 0,
            })
        };
        sim.add_node(mk(), &[ip(1)], cfg, cfg);
        sim.add_node(mk(), &[ip(1)], cfg, cfg);
    }
}
