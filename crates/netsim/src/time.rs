//! Virtual time: nanosecond-resolution instants and durations.
//!
//! All simulation time is a [`SimTime`] measured in integer nanoseconds since
//! the start of the simulation. Integer time keeps event ordering exact and
//! the simulation deterministic across platforms (no floating-point clock
//! drift), which is what lets every experiment in `EXPERIMENTS.md` be
//! regenerated from a seed.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "sim time cannot be negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "duration cannot be negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The time needed to serialize `bytes` onto a link of `bits_per_sec`.
    ///
    /// Returns [`SimDuration::ZERO`] for infinite-rate links
    /// (`bits_per_sec == 0` is treated as infinite, matching
    /// [`crate::link::LinkConfig::rate_bps`] semantics).
    pub fn serialization(bytes: usize, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        SimDuration(((bits * 1_000_000_000) / bits_per_sec as u128) as u64)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_millis_f64(2.5);
        assert_eq!(d.as_nanos(), 2_500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_millis(10));
        // Saturating subtraction: earlier - later == 0.
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(9),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn serialization_delay() {
        // 1250 bytes at 10 Mbit/s = 1 ms.
        let d = SimDuration::serialization(1250, 10_000_000);
        assert_eq!(d, SimDuration::from_millis(1));
        // Infinite-rate link serializes instantly.
        assert_eq!(SimDuration::serialization(1500, 0), SimDuration::ZERO);
        // Large packet on a slow link must not overflow.
        let d = SimDuration::serialization(u16::MAX as usize, 1_000);
        assert!(d.as_secs_f64() > 500.0);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
