//! Fault injection: packet-level link impairments and node-level
//! fail-stop crashes.
//!
//! Figures 18 (sequence-rewriting overhead under loss) and the robustness
//! tests need controllable network impairments. Following the smoltcp
//! examples' fault-injection flags, every link carries a [`FaultConfig`]
//! that can drop (Bernoulli or bursty Gilbert–Elliott), duplicate, delay
//! (jitter), and reorder packets deterministically from the simulation seed.
//!
//! # Fail-stop injection (node kills, trunk cuts, partitions)
//!
//! Packet impairments degrade a path; crash faults *remove* it. The
//! simulator exposes three fail-stop primitives, all exact (no
//! randomness) and all inert until invoked, so a run that never injects
//! a fault is event-for-event identical to one built before this API
//! existed:
//!
//! * [`Simulator::kill_node`] fail-stops a node at the current tick:
//!   every queued and future event addressed to it — packets *and*
//!   timers — is discarded at pop time. The node's state is frozen, not
//!   destroyed (its counters stay inspectable, which is how tests pin
//!   "the dead core's relay counters stop advancing").
//!   [`Simulator::revive_node`] undoes the kill, but events discarded
//!   while dead are gone: a self-rescheduling timer chain does not
//!   restart, so revival is transparent only for purely reactive nodes
//!   such as trunk relays.
//! * [`Simulator::cut_link`] severs the path between one node pair in
//!   both directions (packets already in flight still arrive);
//!   [`Simulator::restore_link`] splices it back.
//! * [`Simulator::partition`] isolates a node set: packets crossing the
//!   boundary are discarded, traffic wholly on either side flows
//!   normally; [`Simulator::heal_partition`] reconnects.
//!
//! Discards are counted in
//! [`SimStats::packets_failstopped`](crate::sim::SimStats), separate
//! from link loss, so recovery benches can tell "the fabric re-routed"
//! from "the fabric is still blackholing".
//!
//! [`Simulator::kill_node`]: crate::sim::Simulator::kill_node
//! [`Simulator::revive_node`]: crate::sim::Simulator::revive_node
//! [`Simulator::cut_link`]: crate::sim::Simulator::cut_link
//! [`Simulator::restore_link`]: crate::sim::Simulator::restore_link
//! [`Simulator::partition`]: crate::sim::Simulator::partition
//! [`Simulator::heal_partition`]: crate::sim::Simulator::heal_partition

use crate::rng::DetRng;
use crate::time::SimDuration;

/// Packet-loss process applied on a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Per-packet drop probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Gilbert–Elliott burst-loss model. The channel alternates
    /// between a Good and a Bad state; each state has its own loss rate.
    GilbertElliott {
        /// P(Good -> Bad) per packet.
        p_g2b: f64,
        /// P(Bad -> Good) per packet.
        p_b2g: f64,
        /// Loss probability while in Good state.
        loss_good: f64,
        /// Loss probability while in Bad state.
        loss_bad: f64,
    },
}

impl LossModel {
    /// Mean loss rate of the stationary process (for reporting).
    pub fn mean_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => p.clamp(0.0, 1.0),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // Stationary distribution of the 2-state chain.
                let denom = p_g2b + p_b2g;
                if denom <= 0.0 {
                    return loss_good.clamp(0.0, 1.0);
                }
                let pi_bad = p_g2b / denom;
                (1.0 - pi_bad) * loss_good.clamp(0.0, 1.0) + pi_bad * loss_bad.clamp(0.0, 1.0)
            }
        }
    }
}

/// Additional random per-packet delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JitterModel {
    /// No added delay.
    None,
    /// Uniform delay in `[0, max]`.
    Uniform {
        /// Upper bound of the added delay.
        max: SimDuration,
    },
    /// Exponential delay with the given mean (heavy-ish tail, models OS
    /// scheduling noise on software paths).
    Exponential {
        /// Mean of the added delay.
        mean: SimDuration,
    },
    /// Rare uniform delay spikes: with probability `prob` add
    /// `U[min, max]`, else nothing (models switch-fabric/NIC microbursts
    /// whose median contribution is zero but whose tail is long).
    Spike {
        /// Per-packet spike probability.
        prob: f64,
        /// Minimum spike size.
        min: SimDuration,
        /// Maximum spike size.
        max: SimDuration,
    },
}

/// Complete fault configuration for one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Loss process.
    pub loss: LossModel,
    /// Probability a delivered packet is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a packet is held back by `reorder_delay`, letting later
    /// packets overtake it.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_delay: SimDuration,
    /// Random per-packet delay (applied to every packet).
    pub jitter: JitterModel,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss: LossModel::None,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::from_millis(5),
            jitter: JitterModel::None,
        }
    }
}

impl FaultConfig {
    /// A clean link (no impairments).
    pub fn clean() -> Self {
        Self::default()
    }

    /// Bernoulli loss with probability `p`.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = LossModel::Bernoulli { p };
        self
    }

    /// Enable reordering: with probability `p`, delay a packet by `delay`.
    pub fn with_reorder(mut self, p: f64, delay: SimDuration) -> Self {
        self.reorder_prob = p;
        self.reorder_delay = delay;
        self
    }

    /// Enable duplication with probability `p`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Enable uniform jitter in `[0, max]`.
    pub fn with_uniform_jitter(mut self, max: SimDuration) -> Self {
        self.jitter = JitterModel::Uniform { max };
        self
    }
}

/// The per-packet decision produced by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultVerdict {
    /// `true` if the packet is dropped.
    pub dropped: bool,
    /// Extra delay (jitter and/or reordering hold-back).
    pub extra_delay: SimDuration,
    /// `true` if a duplicate copy should also be delivered.
    pub duplicate: bool,
}

/// Stateful fault injector (owns the Gilbert–Elliott channel state).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    /// Gilbert–Elliott channel state: `true` = Bad.
    in_bad_state: bool,
    /// Counters for reporting.
    pub packets_seen: u64,
    /// Number of packets dropped by the loss process.
    pub packets_dropped: u64,
}

impl FaultInjector {
    /// Create an injector from a config.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            in_bad_state: false,
            packets_seen: 0,
            packets_dropped: 0,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Replace the configuration at runtime (used by experiments that
    /// degrade a participant's downlink mid-meeting, e.g. Fig. 14).
    pub fn set_config(&mut self, config: FaultConfig) {
        self.config = config;
    }

    /// Judge one packet.
    pub fn judge(&mut self, rng: &mut DetRng) -> FaultVerdict {
        self.packets_seen += 1;
        let dropped = match self.config.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
            } => {
                // Advance channel state, then sample loss in the new state.
                if self.in_bad_state {
                    if rng.chance(p_b2g) {
                        self.in_bad_state = false;
                    }
                } else if rng.chance(p_g2b) {
                    self.in_bad_state = true;
                }
                rng.chance(if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                })
            }
        };
        if dropped {
            self.packets_dropped += 1;
            return FaultVerdict {
                dropped: true,
                extra_delay: SimDuration::ZERO,
                duplicate: false,
            };
        }

        let mut extra = match self.config.jitter {
            JitterModel::None => SimDuration::ZERO,
            JitterModel::Uniform { max } => {
                SimDuration::from_nanos(rng.range_u64(0, max.as_nanos().max(1)))
            }
            JitterModel::Exponential { mean } => {
                SimDuration::from_secs_f64(rng.exp(mean.as_secs_f64()))
            }
            JitterModel::Spike { prob, min, max } => {
                if rng.chance(prob) {
                    SimDuration::from_nanos(
                        rng.range_u64(min.as_nanos(), max.as_nanos().max(min.as_nanos() + 1)),
                    )
                } else {
                    SimDuration::ZERO
                }
            }
        };
        if self.config.reorder_prob > 0.0 && rng.chance(self.config.reorder_prob) {
            extra += self.config.reorder_delay;
        }
        FaultVerdict {
            dropped: false,
            extra_delay: extra,
            duplicate: self.config.duplicate_prob > 0.0 && rng.chance(self.config.duplicate_prob),
        }
    }

    /// Observed loss rate so far.
    pub fn observed_loss_rate(&self) -> f64 {
        if self.packets_seen == 0 {
            0.0
        } else {
            self.packets_dropped as f64 / self.packets_seen as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_never_drops() {
        let mut inj = FaultInjector::new(FaultConfig::clean());
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let v = inj.judge(&mut rng);
            assert!(!v.dropped);
            assert!(!v.duplicate);
            assert_eq!(v.extra_delay, SimDuration::ZERO);
        }
    }

    #[test]
    fn bernoulli_loss_rate_converges() {
        let mut inj = FaultInjector::new(FaultConfig::clean().with_loss(0.2));
        let mut rng = DetRng::new(2);
        for _ in 0..50_000 {
            inj.judge(&mut rng);
        }
        assert!((inj.observed_loss_rate() - 0.2).abs() < 0.01);
    }

    #[test]
    fn gilbert_elliott_matches_stationary_rate() {
        let model = LossModel::GilbertElliott {
            p_g2b: 0.05,
            p_b2g: 0.25,
            loss_good: 0.01,
            loss_bad: 0.5,
        };
        let mut inj = FaultInjector::new(FaultConfig {
            loss: model,
            ..FaultConfig::default()
        });
        let mut rng = DetRng::new(3);
        for _ in 0..200_000 {
            inj.judge(&mut rng);
        }
        let expected = model.mean_loss_rate();
        assert!(
            (inj.observed_loss_rate() - expected).abs() < 0.01,
            "observed {} expected {}",
            inj.observed_loss_rate(),
            expected
        );
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Compare the distribution of loss-run lengths against Bernoulli at
        // the same mean rate: GE should produce longer runs.
        let ge = LossModel::GilbertElliott {
            p_g2b: 0.01,
            p_b2g: 0.2,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let mean = ge.mean_loss_rate();
        let run_len = |model: LossModel, seed: u64| {
            let mut inj = FaultInjector::new(FaultConfig {
                loss: model,
                ..FaultConfig::default()
            });
            let mut rng = DetRng::new(seed);
            let (mut runs, mut total, mut cur) = (0u64, 0u64, 0u64);
            for _ in 0..200_000 {
                if inj.judge(&mut rng).dropped {
                    cur += 1;
                } else if cur > 0 {
                    runs += 1;
                    total += cur;
                    cur = 0;
                }
            }
            if runs == 0 {
                0.0
            } else {
                total as f64 / runs as f64
            }
        };
        let ge_run = run_len(ge, 5);
        let be_run = run_len(LossModel::Bernoulli { p: mean }, 5);
        assert!(ge_run > 2.0 * be_run, "ge {ge_run} vs bernoulli {be_run}");
    }

    #[test]
    fn duplication_and_reorder_fire() {
        let cfg = FaultConfig::clean()
            .with_duplication(0.5)
            .with_reorder(0.5, SimDuration::from_millis(7));
        let mut inj = FaultInjector::new(cfg);
        let mut rng = DetRng::new(4);
        let mut dups = 0;
        let mut reorders = 0;
        for _ in 0..1000 {
            let v = inj.judge(&mut rng);
            if v.duplicate {
                dups += 1;
            }
            if v.extra_delay >= SimDuration::from_millis(7) {
                reorders += 1;
            }
        }
        assert!(dups > 400 && dups < 600, "dups {dups}");
        assert!(reorders > 400 && reorders < 600, "reorders {reorders}");
    }

    #[test]
    fn spike_jitter_is_rare_but_large() {
        let mut inj = FaultInjector::new(FaultConfig {
            jitter: JitterModel::Spike {
                prob: 0.05,
                min: SimDuration::from_micros(50),
                max: SimDuration::from_micros(150),
            },
            ..FaultConfig::clean()
        });
        let mut rng = DetRng::new(8);
        let mut spikes = 0;
        for _ in 0..10_000 {
            let v = inj.judge(&mut rng);
            if v.extra_delay > SimDuration::ZERO {
                spikes += 1;
                assert!(v.extra_delay >= SimDuration::from_micros(50));
                assert!(v.extra_delay <= SimDuration::from_micros(150));
            }
        }
        assert!((300..700).contains(&spikes), "spikes {spikes}");
    }

    #[test]
    fn mean_loss_rate_edge_cases() {
        assert_eq!(LossModel::None.mean_loss_rate(), 0.0);
        assert_eq!(LossModel::Bernoulli { p: 2.0 }.mean_loss_rate(), 1.0);
        let degenerate = LossModel::GilbertElliott {
            p_g2b: 0.0,
            p_b2g: 0.0,
            loss_good: 0.1,
            loss_bad: 0.9,
        };
        assert!((degenerate.mean_loss_rate() - 0.1).abs() < 1e-12);
    }
}
