//! Streaming statistics shared by the experiment harnesses.
//!
//! Small, dependency-free estimators used everywhere the paper reports a
//! statistic: Welford mean/variance, exact percentiles over retained
//! samples (the evaluation's CDFs and tail-jitter plots), EWMA (the §5.3
//! feedback filter), and fixed-width time-series binning.

use crate::time::{SimDuration, SimTime};

/// Welford online mean/variance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Percentile estimator that retains all samples (exact; suitable for the
/// 10^5–10^6 sample sizes of these experiments).
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Create an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`q` in `[0,1]`), by nearest-rank on the sorted
    /// samples. Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank definition: smallest value with CDF >= q.
        let rank = (q * self.samples.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(self.samples.len() - 1);
        Some(self.samples[idx])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Evaluate the empirical CDF at evenly spaced sample points, returning
    /// `(value, cumulative_fraction)` pairs — the format Fig. 19 plots.
    pub fn cdf_points(&mut self, points: usize) -> Vec<(f64, f64)> {
        if self.samples.is_empty() || points == 0 {
            return Vec::new();
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let frac = (i as f64 + 1.0) / points as f64;
                let idx = ((n as f64 * frac).ceil() as usize - 1).min(n - 1);
                (self.samples[idx], frac)
            })
            .collect()
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// Exponentially weighted moving average — the filter Scallop's switch
/// agent applies to per-downlink REMB estimates (§5.3).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is the weight of a new observation (`0 < alpha <= 1`).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Fold in an observation and return the new average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been folded in.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Drop all state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Accumulates a value per fixed-width time bin — used for every
/// "X over time" figure (bitrate series, concurrency series).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bin: SimDuration,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Create a series with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin > SimDuration::ZERO, "bin width must be positive");
        TimeSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Add `value` into the bin containing `at`.
    pub fn add(&mut self, at: SimTime, value: f64) {
        let idx = (at.as_nanos() / self.bin.as_nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// `(bin_start_seconds, sum)` for every bin.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * w, *v))
            .collect()
    }

    /// `(bin_start_seconds, sum / bin_seconds)` — converts byte counts to
    /// rates, event counts to frequencies.
    pub fn rate_points(&self) -> Vec<(f64, f64)> {
        let w = self.bin.as_secs_f64();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, v)| (i as f64 * w, *v / w))
            .collect()
    }

    /// Maximum bin value.
    pub fn max(&self) -> f64 {
        self.bins.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_degenerate_cases() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.add(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn percentiles_exact() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.add(x as f64);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        assert_eq!(p.median(), Some(50.0));
        assert_eq!(p.quantile(0.95), Some(95.0));
        assert_eq!(Percentiles::new().median(), None);
    }

    #[test]
    fn percentiles_interleaved_adds() {
        let mut p = Percentiles::new();
        p.add(5.0);
        assert_eq!(p.median(), Some(5.0));
        p.add(1.0);
        p.add(9.0);
        assert_eq!(p.median(), Some(5.0));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let mut p = Percentiles::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            p.add(x);
        }
        let cdf = p.cdf_points(5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert_eq!(cdf.last().unwrap().0, 5.0);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(20.0), 15.0);
        assert_eq!(e.update(20.0), 17.5);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn time_series_bins_and_rates() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.add(SimTime::from_millis(100), 10.0);
        ts.add(SimTime::from_millis(900), 20.0);
        ts.add(SimTime::from_millis(1500), 5.0);
        let pts = ts.points();
        assert_eq!(pts, vec![(0.0, 30.0), (1.0, 5.0)]);
        let rates = ts.rate_points();
        assert_eq!(rates, vec![(0.0, 30.0), (1.0, 5.0)]);
        assert_eq!(ts.max(), 30.0);
    }
}
