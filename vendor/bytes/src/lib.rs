//! Vendored minimal stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `bytes` API it actually uses:
//! a cheaply-cloneable, immutable, reference-counted byte buffer. Clones
//! share the same allocation (`as_ptr` equality holds), which is what the
//! simulator's zero-copy packet re-addressing relies on.

// Vendored stand-in: exempt from workspace clippy (CI lints first-party
// code only; these stubs mirror upstream APIs, warts included).
#![allow(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Wrap a static slice (copies here; semantics are identical for an
    /// immutable buffer).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::copy_from_slice(&v[..])
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if (0x20..0x7f).contains(&b) {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slice_equality() {
        let a = Bytes::copy_from_slice(&[9, 8, 7]);
        assert_eq!(a, [9u8, 8, 7][..]);
        assert_eq!(a.to_vec(), vec![9, 8, 7]);
        assert_eq!(a.len(), 3);
    }
}
