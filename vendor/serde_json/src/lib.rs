//! Vendored minimal `serde_json` stand-in: serialize only, over the
//! vendored `serde::Serialize` JSON-writing trait.

// Vendored stand-in: exempt from workspace clippy (CI lints first-party
// code only; these stubs mirror upstream APIs, warts included).
#![allow(clippy::all)]

use serde::Serialize;
use std::fmt;

/// Serialization error (the stub serializer is infallible; this type
/// exists for signature compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indent compact JSON (the stub never emits strings containing
/// braces/brackets unescaped, so a quote-aware scan is sufficient).
fn prettify(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                depth += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_numbers() {
        assert_eq!(to_string(&vec![1u32, 2, 3]).unwrap(), "[1,2,3]");
    }

    #[test]
    fn pretty_has_newlines() {
        let p = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert!(p.contains('\n'));
    }
}
