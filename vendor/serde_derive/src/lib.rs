//! Vendored minimal `#[derive(Serialize)]`.
//!
//! Supports exactly what this workspace uses: non-generic structs with
//! named fields (and fieldless enums, serialized as their variant name).
//! The macro parses the item with hand-rolled token inspection — no
//! `syn`/`quote`, because the build environment cannot fetch them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored JSON-writing trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct Name { ... }` or `enum Name { ... }`, skipping
    // attributes, doc comments, and visibility qualifiers.
    let mut i = 0;
    let mut kind = "";
    let mut name = String::new();
    let mut body: Option<TokenStream> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                kind = if id.to_string() == "struct" {
                    "struct"
                } else {
                    "enum"
                };
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = n.to_string();
                }
                for t in &tokens[i + 1..] {
                    if let TokenTree::Group(g) = t {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => i += 1,
        }
    }
    let body = body.unwrap_or_default();

    let impl_body = match kind {
        "struct" => {
            let fields = named_fields(body);
            let mut writes = String::new();
            for (idx, f) in fields.iter().enumerate() {
                if idx > 0 {
                    writes.push_str("out.push(',');\n");
                }
                writes.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            format!("out.push('{{');\n{writes}out.push('}}');")
        }
        _ => {
            // Fieldless enum: serialize the variant name as a string.
            let variants = enum_variants(body);
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!(
                    "{name}::{v} => serde::write_json_string(\"{v}\", out),\n"
                ));
            }
            if variants.is_empty() {
                "let _ = out;".to_string()
            } else {
                format!("match self {{\n{arms}}}")
            }
        }
    };

    let out = format!(
        "impl serde::Serialize for {name} {{\n\
            fn serialize_json(&self, out: &mut String) {{\n{impl_body}\n}}\n\
         }}"
    );
    out.parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Field names of a named-struct body, skipping attributes, visibility,
/// and the type after each `:` (types may themselves contain `,` inside
/// angle brackets or groups, so we track depth).
fn named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut expecting_name = true;
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    for t in body {
        match &t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if expecting_name && angle_depth == 0 => {
                    if let Some(n) = last_ident.take() {
                        fields.push(n);
                    }
                    expecting_name = false;
                }
                ',' if angle_depth == 0 => {
                    expecting_name = true;
                    last_ident = None;
                }
                '#' => {}
                _ => {}
            },
            TokenTree::Ident(id) if expecting_name => {
                let s = id.to_string();
                if s != "pub" && s != "crate" && s != "r#" {
                    last_ident = Some(s);
                }
            }
            TokenTree::Group(_) => {}
            _ => {}
        }
    }
    fields
}

/// Variant names of a fieldless enum body.
fn enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut expecting = true;
    for t in body {
        match &t {
            TokenTree::Ident(id) if expecting => {
                variants.push(id.to_string());
                expecting = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expecting = true,
            _ => {}
        }
    }
    variants
}
