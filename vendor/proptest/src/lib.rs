//! Vendored minimal property-testing harness, API-compatible with the
//! slice of `proptest` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a small randomized-testing core: strategies are
//! deterministic generators (no shrinking, no persisted failure corpus),
//! and `prop_assert!`-style macros panic like plain `assert!`. Failing
//! inputs are reported through the assertion message; reproduce by
//! re-running (generation is seeded deterministically per test).

// Vendored stand-in: exempt from workspace clippy (CI lints first-party
// code only; these stubs mirror upstream APIs, warts included).
#![allow(clippy::all)]

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator state used for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor (each `proptest!` test derives its own seed).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy used by `prop_oneof!`.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

/// Object-safe generation.
pub trait DynStrategy<T> {
    /// Produce one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the macro's collected arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_u64(0, self.arms.len() as u64) as usize;
        self.arms[i].generate_dyn(rng)
    }
}

// ---------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.range_u64(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    if lo == hi {
                        return lo as $t;
                    }
                    rng.range_u64(lo, hi + 1) as $t
                }
            }
        )*
    };
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// `any` / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — generate any `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

// ---------------------------------------------------------------------
// String strategies from simple patterns
// ---------------------------------------------------------------------

/// `&str` acts as a strategy over the pattern subset `[class]{m,n}`
/// (character classes with `a-z` ranges), the only regex shapes the
/// workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (charset, lo, hi) = parse_charclass_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = rng.range_u64(lo as u64, hi as u64 + 1) as usize;
        (0..len)
            .map(|_| charset[rng.range_u64(0, charset.len() as u64) as usize])
            .collect()
    }
}

fn parse_charclass_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut charset = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                charset.push(c);
            }
            i += 3;
        } else {
            charset.push(chars[i]);
            i += 1;
        }
    }
    let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    if charset.is_empty() {
        return None;
    }
    Some((charset, lo, hi))
}

// ---------------------------------------------------------------------
// Collection / option / array modules
// ---------------------------------------------------------------------

/// Size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — a `Vec` of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.range_u64(self.size.lo as u64, self.size.hi as u64 + 1) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::*;

    /// Strategy yielding `Option<T>` (`None` about a quarter of the time).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(strategy)` — `Some` or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::*;

    /// Strategy for `[T; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident : $n:literal),*) => {
            $(
                /// `[T; N]` with every element from `element`.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )*
        };
    }

    uniform_fn!(uniform4: 4, uniform8: 8, uniform12: 12, uniform16: 16);
}

/// Sampling helpers.
pub mod sample {
    use super::*;

    /// An index into a collection whose length is only known at use site.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------
// Config + runner support
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

thread_local! {
    static CASE_SKIPPED: Cell<bool> = const { Cell::new(false) };
}

/// Internal: mark the current case skipped (`prop_assume!`).
pub fn mark_case_skipped() {
    CASE_SKIPPED.with(|c| c.set(true));
}

/// Internal: consume the skip flag.
pub fn take_case_skipped() -> bool {
    CASE_SKIPPED.with(|c| c.replace(false))
}

/// Internal: derive a per-test seed from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Define property tests: each function's arguments are drawn from the
/// given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(unused_mut)]
                    let mut case = || -> () { $body };
                    case();
                    let _ = $crate::take_case_skipped();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@impl ($cfg); $($rest)*}
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@impl ($crate::ProptestConfig::default()); $($rest)*}
    };
}

/// Assert within a property test (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            $crate::mark_case_skipped();
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as $crate::BoxedStrategy<_>,)+
        ])
    };
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// The `prop::` alias namespace.
    pub mod prop {
        pub use crate::{array, collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (5usize..=5).generate(&mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn string_pattern_charclass() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let s = "[a-c0-2]{2,5}".generate(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc012".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_plumbing(v in prop::collection::vec(any::<u8>(), 1..4), x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn macro_generated_test_runs() {
        macro_plumbing();
    }
}
