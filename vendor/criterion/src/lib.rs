//! Vendored minimal stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a tiny benchmarking harness exposing the criterion
//! API surface its benches use. Measurement is a simple
//! warm-up-then-time loop printing mean ns/iter — adequate for relative
//! comparisons, with none of criterion's statistics.

// Vendored stand-in: exempt from workspace clippy (CI lints first-party
// code only; these stubs mirror upstream APIs, warts included).
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { name: s.clone() }
    }
}

/// Drives closure timing for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: aim for ~50 ms of measured work.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 5_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("bench {name:<52} {ns:>12.1} ns/iter ({} iters)", b.iters);
}

/// The benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Construct (used by the `criterion_main!` expansion).
    pub fn new() -> Self {
        Criterion {}
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id.name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
