//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors
//! the one capability it uses from serde: deriving `Serialize` on plain
//! structs and turning them into JSON (see the sibling `serde_json`
//! stub). The trait serializes directly to a JSON string — there is no
//! data model, no `Serializer` abstraction, and no `Deserialize`.

// Vendored stand-in: exempt from workspace clippy (CI lints first-party
// code only; these stubs mirror upstream APIs, warts included).
#![allow(clippy::all)]

pub use serde_derive::Serialize;

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Escape and append a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_serialize {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })*
    };
}

impl_display_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        (*self as f64).serialize_json(out)
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out)
    }
}

macro_rules! impl_tuple_serialize {
    ($(($($name:ident : $idx:tt),+))*) => {
        $(impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        })*
    };
}

impl_tuple_serialize! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
