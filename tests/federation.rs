//! Federation integration: one meeting spanning three campuses.
//!
//! The zone tier's claim extends the campus one to a continent. This
//! suite pins its three load-bearing properties end to end:
//!
//! 1. **Quality**: every cross-zone stream decodes at the fabric floor
//!    (≥ 25 fps) despite the WAN hop's latency and rate limit.
//! 2. **WAN economy**: uplink media crosses each WAN link **once per
//!    remote zone**, not once per remote switch or receiver — the
//!    remote zone's gateway edge re-trunks in-zone, and its edges'
//!    PREs fan out per receiver.
//! 3. **Zone-affine ownership**: with zone affinity, every meeting's
//!    owner shard stays in its home zone's shard set (run the corpus
//!    with `SCALLOP_SHARDS=4` to exercise the multi-shard case).

use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::netsim::time::SimDuration;

/// Three campuses of 2 edges + 1 core each; six participants land
/// round-robin on edges 0..6 (two per zone), the first three sending
/// (P0, P1 in zone 0; P2 in zone 1).
fn federation3() -> ScallopHarness {
    ScallopHarness::new(
        HarnessConfig::default()
            .participants(6)
            .senders(3)
            .switches(2)
            .cores(1)
            .zones(3)
            .seed(0xFED3),
    )
}

#[test]
fn cross_zone_streams_decode_near_full_rate() {
    let mut h = federation3();
    h.run_for_secs(5.0);
    // Every sender→receiver pair whose endpoints sit in different
    // zones decodes at the fabric floor.
    let window = SimDuration::from_secs(2);
    let mut cross_pairs = 0;
    for s in 0..3 {
        for r in 0..6 {
            if r == s {
                continue;
            }
            let (zs, zr) = (h.zone_of_edge(h.edge_of(s)), h.zone_of_edge(h.edge_of(r)));
            if zs == zr {
                continue;
            }
            cross_pairs += 1;
            let fps = h.fps_between(s, r, window).expect("cross-zone stream");
            assert!(
                (25.0..35.0).contains(&fps),
                "P{s}(zone {zs}) -> P{r}(zone {zr}) fps {fps}"
            );
        }
    }
    assert!(cross_pairs >= 10, "expected a continental mesh of pairs");
    let report = h.report();
    assert_eq!(report.freezes, 0, "no decoder freezes across the WAN");
}

#[test]
fn wan_carries_one_copy_per_remote_zone() {
    let mut h = federation3();
    h.run_for_secs(5.0);
    assert_eq!(h.wan_link_count(), 3, "3-zone full mesh");

    // Offered load per zone: media + SRs its edges ingested from
    // *local* clients (`rtp_in`/`rtcp_sr` also count trunk-arrived
    // packets, which `trunk_in` isolates). The meeting spans all three
    // zones, so each zone's uplink must cross each of its two WAN
    // links exactly once — per link, the relay carries the two
    // endpoint zones' offered load, nothing more (a per-switch or
    // per-receiver WAN fan-out would double it).
    let mut offered_zone = vec![0u64; 3];
    for e in 0..6 {
        let c = h.counters_at(e);
        offered_zone[h.zone_of_edge(e)] += c.rtp_in_pkts + c.rtcp_sr_pkts - c.trunk_in_pkts;
    }
    // Senders sit in zones 0 and 1; zone 2 only receives.
    assert!(
        offered_zone[0] > 0 && offered_zone[1] > 0,
        "{offered_zone:?}"
    );
    assert_eq!(offered_zone[2], 0, "zone 2 hosts no senders");
    for l in 0..3 {
        let (a, b) = {
            let wl = &h.fabric.topology.wan_links[l];
            (wl.zone_a, wl.zone_b)
        };
        let s = h.wan_stats(l);
        let expected = offered_zone[a] + offered_zone[b];
        assert_eq!(s.unroutable_pkts, 0, "link {l} dropped routes");
        assert!(
            s.relayed_pkts <= expected,
            "link {l} (zones {a}-{b}) relayed {} of {expected} offered: \
             media crossed the WAN more than once per remote zone",
            s.relayed_pkts
        );
        assert!(
            s.relayed_pkts as f64 >= 0.95 * expected as f64,
            "link {l} (zones {a}-{b}) relayed {} of {expected} offered",
            s.relayed_pkts
        );
        assert!(s.relayed_bytes > 0, "link {l} carried no bytes");
    }
}

#[test]
fn zone_affine_sharding_keeps_every_owner_in_its_home_zone() {
    // Explicitly 4 shards over 3 zones (the acceptance configuration;
    // the default-config harness below additionally honors
    // `SCALLOP_SHARDS`): shard s may own zone-z meetings only when
    // s ≡ z (mod zones), so a zone's bookkeeping never migrates onto
    // a controller homed with another campus.
    for cfg in [
        HarnessConfig::default()
            .participants(0)
            .switches(2)
            .cores(1)
            .zones(3)
            .shards(4)
            .seed(0xFED4),
        HarnessConfig::default()
            .participants(0)
            .switches(2)
            .cores(1)
            .zones(3)
            .seed(0xFED4),
    ] {
        let mut h = ScallopHarness::new(cfg);
        let mut meetings = vec![h.fabric_meeting];
        for i in 1..12 {
            meetings.push(
                h.controller
                    .create_fabric_meeting(&mut h.sim, &h.fabric, i % 6),
            );
        }
        for &gmid in &meetings {
            let home = h.controller.home_edge_of(gmid).expect("homed");
            let zone = h.zone_of_edge(home);
            let owner = h.controller.owner_of(gmid).expect("owned");
            assert!(
                h.controller.zone_shards(zone).contains(&owner),
                "meeting {gmid} homed in zone {zone} owned by shard {owner} \
                 outside {:?}",
                h.controller.zone_shards(zone)
            );
        }
        // The per-zone telemetry accounts for every meeting.
        let zc = h.zone_meeting_counts();
        assert_eq!(zc.iter().sum::<usize>(), meetings.len());
        assert!(zc.iter().all(|&c| c == 4), "round-robin balance: {zc:?}");
        assert_eq!(h.cross_zone_handoffs(), 0);
    }
}
