//! Failure-injection integration tests: the full stack under loss,
//! reordering, and churn — the robustness §6.2 is designed around.

use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::netsim::fault::FaultConfig;
use scallop::netsim::time::SimDuration;

#[test]
fn survives_downlink_loss_with_nack_repair() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xFA111));
    h.run_for_secs(2.0);
    // 2% random loss on one receiver's downlink: NACK repair keeps the
    // stream decodable at full rate.
    h.sim
        .downlink_mut(h.client_ids[2])
        .set_faults(FaultConfig::clean().with_loss(0.02));
    h.run_for_secs(10.0);
    let fps = h
        .fps_between(0, 2, SimDuration::from_secs(3))
        .expect("stream");
    assert!(fps > 22.0, "fps under 2% loss: {fps}");
    let stats = h.client_stats(2);
    assert!(stats.nacks_sent > 0, "loss must trigger NACKs");
}

#[test]
fn survives_reordering() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xFA112));
    h.run_for_secs(2.0);
    h.sim
        .downlink_mut(h.client_ids[1])
        .set_faults(FaultConfig::clean().with_reorder(0.05, SimDuration::from_millis(8)));
    h.run_for_secs(8.0);
    let fps = h
        .fps_between(0, 1, SimDuration::from_secs(3))
        .expect("stream");
    assert!(fps > 24.0, "fps under reordering: {fps}");
    let report = h.report();
    assert_eq!(report.freezes, 0, "reordering alone must not freeze");
}

#[test]
fn survives_duplication() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xFA113));
    h.run_for_secs(2.0);
    h.sim
        .downlink_mut(h.client_ids[1])
        .set_faults(FaultConfig::clean().with_duplication(0.10));
    h.run_for_secs(8.0);
    // Network duplicates are benign (identical payloads): no freezes.
    let report = h.report();
    assert_eq!(report.freezes, 0, "benign duplicates froze a decoder");
    let fps = h
        .fps_between(0, 1, SimDuration::from_secs(3))
        .expect("stream");
    assert!(fps > 24.0, "fps under duplication: {fps}");
}

#[test]
fn recovers_from_transient_blackout() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xFA114));
    h.run_for_secs(3.0);
    // Total blackout of one downlink for 2 s...
    h.sim
        .downlink_mut(h.client_ids[2])
        .set_faults(FaultConfig::clean().with_loss(1.0));
    h.run_for_secs(2.0);
    // ...then full recovery.
    h.sim
        .downlink_mut(h.client_ids[2])
        .set_faults(FaultConfig::clean());
    h.run_for_secs(15.0);
    let fps = h
        .fps_between(0, 2, SimDuration::from_secs(3))
        .expect("stream");
    // PLI-driven key frames restore playback after the blackout.
    assert!(fps > 10.0, "no recovery after blackout: {fps}");
}

#[test]
fn loss_during_adaptation_recovers() {
    // The §6.2 stress case: suppression (sequence rewriting) active
    // while the path also loses packets.
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xFA115));
    h.run_for_secs(3.0);
    h.degrade_downlink(2, 2_600_000);
    h.run_for_secs(8.0); // adaptation settles at DT1
    h.sim
        .downlink_mut(h.client_ids[2])
        .set_faults(FaultConfig::clean().with_loss(0.01));
    h.run_for_secs(10.0);
    let fps = h
        .fps_between(0, 2, SimDuration::from_secs(3))
        .expect("stream");
    assert!(
        (7.0..22.0).contains(&fps),
        "adapted stream under loss: {fps} fps"
    );
    // The stream keeps flowing; the decoder may blip but must not be
    // permanently dead.
    let stats = h.client_stats(2);
    let decoded: u64 = stats.streams.iter().map(|(_, r)| r.frames_decoded).sum();
    assert!(decoded > 500, "decoded {decoded}");
}
