//! Fault-tolerance integration tests: the fabric under fail-stop
//! failures — core relay crashes, trunk link cuts, and controller-shard
//! silence (ARCHITECTURE.md "Failure domains").
//!
//! Each scenario follows the same arc the `bench::fault` gate measures:
//! a healthy warm-up, a deterministic failure at a chosen instant, a
//! visible impact window (media blackholes — break-before-make is
//! forced by a crash), the control-plane repair pass, and a recovery
//! check back above the fabric floor (25 fps) with zero stranded
//! meetings.

use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::netsim::time::SimDuration;

/// A 2-edge campus with `cores` core relays: participants round-robin
/// onto edges 0 and 1, so the cross-edge pair (P0 → P1) always rides a
/// trunk.
fn campus(cores: usize, seed: u64) -> ScallopHarness {
    ScallopHarness::new(
        HarnessConfig::default()
            .participants(4)
            .switches(2)
            .cores(cores)
            .seed(seed),
    )
}

fn cross_edge_fps(h: &mut ScallopHarness, window_secs: u64) -> f64 {
    h.fps_between(0, 1, SimDuration::from_secs(window_secs))
        .unwrap_or(0.0)
}

#[test]
fn core_kill_blackholes_then_recovers_after_repair() {
    let mut h = campus(2, 0xFA210);
    h.run_for_secs(3.0);
    assert!(cross_edge_fps(&mut h, 2) > 24.0, "healthy before the kill");

    // Kill the core carrying the 0↔1 trunk. Its relay counters freeze
    // at the crash and the cross-edge stream blackholes.
    let victim = h.fabric.topology.core_between(0, 1).expect("trunk core");
    let frozen = h.core_stats(victim).relayed_bytes;
    assert!(frozen > 0, "the victim core was carrying trunk media");
    h.kill_core(victim);
    assert_eq!(h.dead_cores(), vec![victim]);
    h.run_for_secs(2.0);
    assert!(
        cross_edge_fps(&mut h, 1) < 5.0,
        "trunk media must blackhole while the core is down"
    );
    assert_eq!(
        h.core_stats(victim).relayed_bytes,
        frozen,
        "a dead core's counters freeze"
    );
    assert!(
        h.sim.stats.packets_failstopped > 0,
        "packets toward the dead core are accounted as fail-stopped"
    );

    // Repair: every affected branch re-aims at the surviving core.
    let repaired = h.repair_core_failure();
    assert!(repaired > 0, "the repair pass must re-aim trunk branches");
    h.run_for_secs(3.0);
    assert!(
        cross_edge_fps(&mut h, 2) > 24.0,
        "cross-edge stream recovers over the surviving core"
    );
    assert_eq!(
        h.core_stats(victim).relayed_bytes,
        frozen,
        "recovered traffic avoids the dead core"
    );
    // No meeting was stranded: the roster and home survived intact.
    assert_eq!(h.controller.fabric_members(h.fabric_meeting).len(), 4);
}

#[test]
fn trunk_cut_fails_over_to_the_alternate_core() {
    let mut h = campus(2, 0xFA211);
    h.run_for_secs(3.0);
    assert!(cross_edge_fps(&mut h, 2) > 24.0, "healthy before the cut");

    // Cut edge 0's link to the trunk-carrying core: both directions of
    // the 0↔1 media die (each rides that edge↔core pair somewhere).
    let core = h.fabric.topology.core_between(0, 1).expect("trunk core");
    h.cut_trunk(0, core);
    h.run_for_secs(2.0);
    assert!(
        cross_edge_fps(&mut h, 1) < 5.0,
        "trunk media must blackhole while the link is cut"
    );

    // Failover: only branches touching the cut edge re-aim; they land
    // on the alternate core, which starts relaying.
    let alternate = 1 - core;
    let alt_before = h.core_stats(alternate).relayed_bytes;
    let repaired = h.repair_trunk_cut(0, core);
    assert!(repaired > 0, "the failover pass must re-aim trunk branches");
    h.run_for_secs(3.0);
    assert!(
        cross_edge_fps(&mut h, 2) > 24.0,
        "cross-edge stream recovers over the alternate core"
    );
    assert!(
        h.core_stats(alternate).relayed_bytes > alt_before,
        "failed-over media rides the alternate core"
    );
}

#[test]
fn coreless_fallback_survives_total_core_loss() {
    // One core only: killing it leaves no alternate, so the repair
    // falls back to direct edge-to-edge trunk addressing.
    let mut h = campus(1, 0xFA212);
    h.run_for_secs(3.0);
    assert!(cross_edge_fps(&mut h, 2) > 24.0);
    h.kill_core(0);
    h.run_for_secs(1.5);
    assert!(cross_edge_fps(&mut h, 1) < 5.0);
    let repaired = h.repair_core_failure();
    assert!(repaired > 0);
    h.run_for_secs(3.0);
    assert!(
        cross_edge_fps(&mut h, 2) > 24.0,
        "direct edge addressing carries the trunk when no core survives"
    );
}

#[test]
fn shard_silence_steals_ownership_and_fences_the_resurrected_owner() {
    // Explicit shard count: the liveness protocol needs a live peer to
    // steal, whatever SCALLOP_SHARDS says.
    let mut h = ScallopHarness::new(
        HarnessConfig::default()
            .participants(4)
            .switches(2)
            .cores(1)
            .shards(3)
            .seed(0xFA213),
    );
    h.run_for_secs(2.0);
    let owner = h.shard_of_meeting();

    // The owner goes silent. Media is control-plane-independent, so
    // the call is unaffected while the lease drains.
    h.silence_shard(owner);
    for _ in 0..scallop::core::shard::LEASE_TICKS {
        h.tick_leases();
        h.run_for_secs(0.5);
    }
    assert!(
        cross_edge_fps(&mut h, 1) > 24.0,
        "media ignores shard death"
    );

    // Lease expired: a live peer steals the meeting under a bumped
    // epoch, and the meeting is fully operable through the thief.
    assert_eq!(h.steal_expired_leases(), 1);
    let thief = h.shard_of_meeting();
    assert_ne!(thief, owner, "a live peer must own the meeting now");
    assert!(!h.controller.shard_is_silent(thief));
    assert_eq!(h.controller.meeting_epoch(h.fabric_meeting), Some(2));
    assert_eq!(h.controller.lease_steal_total(), 1);
    let idx = h.join_late(0, false);
    h.run_for_secs(2.0);
    assert!(
        h.fps_between(1, idx, SimDuration::from_secs(1))
            .unwrap_or(0.0)
            > 24.0,
        "a post-steal join is admitted by the new owner"
    );

    // Resurrection: the stale owner's re-assertion carries the old
    // epoch, is rejected, and the shard rejoins the eligible set.
    assert_eq!(h.revive_shard(owner), 1);
    assert!(h.controller.stale_epoch_writes_rejected() >= 1);
    assert!(!h.controller.shard_is_silent(owner));
    // Re-admission is immediate: the ownership rebalance that rides
    // revival hands the meeting back to its preferred (now live) owner
    // under the stolen epoch — a cooperative handoff, no bump.
    assert_eq!(h.shard_of_meeting(), owner);
    assert_eq!(h.controller.meeting_epoch(h.fabric_meeting), Some(2));
    // Protocol accounting reconciles after the full crash/revive arc.
    assert_eq!(
        h.controller.meetings_acquired_total(),
        h.controller.handoff_total()
    );
    assert_eq!(
        h.controller.meetings_released_total(),
        h.controller.handoff_total()
    );
    // The revived shard is re-admitted: a burst of new meetings must
    // spread onto it (the bounded-loads cap forces the spread).
    for i in 0..6 {
        h.controller
            .create_fabric_meeting(&mut h.sim, &h.fabric, i % 2);
    }
    assert!(
        h.controller.meetings_per_shard()[owner] > 0,
        "revived shard wins new meetings again"
    );
    h.run_for_secs(1.0);
    assert!(cross_edge_fps(&mut h, 1) > 24.0, "media healthy end to end");
}

#[test]
fn edge_death_evacuates_and_the_meeting_survives() {
    let mut h = campus(1, 0xFA214);
    h.run_for_secs(2.0);
    // Kill edge 1 (P1 and P3 crash with it) and evacuate.
    h.kill_edge(1);
    let dropped = h.evacuate_edge(1);
    assert_eq!(dropped, 2, "both edge-1 members crash with their switch");
    let members = h.controller.fabric_members(h.fabric_meeting);
    assert_eq!(members.len(), 2, "edge-0 members survive");
    assert_eq!(h.home_edge(), 0, "home stays on the surviving edge");
    assert_eq!(
        h.controller.segment_of(h.fabric_meeting, 1),
        None,
        "the dead edge's segment is collected from the bookkeeping"
    );
    // The survivors keep talking on their own edge.
    h.run_for_secs(3.0);
    assert!(
        h.fps_between(0, 2, SimDuration::from_secs(2))
            .unwrap_or(0.0)
            > 24.0,
        "co-located survivors are unaffected"
    );
}
