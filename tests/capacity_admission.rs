//! Capacity planner + admission control: the flash-crowd-into-a-thin-
//! trunk suite.
//!
//! The scenario is the campus failure mode the planner exists for: every
//! camera-on participant sits in one building (`hotspot_crowd`) and the
//! audience spreads over the remaining edges, so the hot edge's trunk
//! uplink is the contended line. With budgets **enforced** the suite
//! demands the three-way admission contract of
//! [`scallop::core::capacity::AdmissionDecision`]:
//!
//! * joins that fit are admitted at full rate and hold ≥ 25 fps,
//! * joins that would oversubscribe a trunk are degraded to SVC-thin —
//!   alive at the thin decode target, **not** frozen,
//! * joins that fit nowhere (even thin) are refused with a typed
//!   [`RefusalReason`] and never get a client node,
//! * no budget line is ever booked over, and the load ledger reconciles
//!   to zero once everyone hangs up.
//!
//! A proptest replays randomized join/leave/re-home/degrade histories
//! through the sharded control plane and checks the ledger invariants
//! after every single step. The REMB tests pin the cross-fabric
//! feedback behavior: with window-paced aggregation on, a sender sees
//! at most one min-filtered REMB per 100 ms agent window no matter how
//! many edges forward feedback, and the min filter tracks the slowest
//! involved edge.
//!
//! Everything here honors `SCALLOP_SHARDS` and `SCALLOP_WORKERS` — CI
//! runs the suite plain and under the 4-shard / 4-worker matrix.
//!
//! [`RefusalReason`]: scallop::core::capacity::RefusalReason

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use scallop::core::capacity::{
    AdmissionDecision, CapacityModel, FabricBudgets, RefusalReason, THIN_DECODE_TARGET,
};
use scallop::core::fabric::Fabric;
use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::core::shard::ShardedControlPlane;
use scallop::dataplane::seqrewrite::SeqRewriteMode;
use scallop::netsim::link::LinkConfig;
use scallop::netsim::packet::HostAddr;
use scallop::netsim::sim::Simulator;
use scallop::netsim::time::SimDuration;
use scallop::netsim::topology::Topology;
use scallop::workload::hotspot_crowd;
use std::net::Ipv4Addr;

/// Edges of the hotspot campus (senders on 0, viewers on 1..4).
const EDGES: usize = 4;
/// Camera-on participants in the hot building.
const SENDERS: usize = 2;
/// Viewers round-robined over the remote edges.
const RECEIVERS: usize = 9;
/// Trunk budget sized so the deterministic join sequence exercises all
/// three admission outcomes: the first remote segment fits full
/// (2 × 6 Mb/s), the second only thin (+ 2 × 3 Mb/s), the third not at
/// all (same sizing as the `BENCH_capacity` rows).
const TRUNK_BPS: u64 = 20_000_000;

/// Shard count under test (the same `SCALLOP_SHARDS` knob the harness
/// and the compile-equivalence suite honor).
fn shards_from_env() -> usize {
    match std::env::var("SCALLOP_SHARDS") {
        Err(_) => 1,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("SCALLOP_SHARDS must be a positive integer, got {raw:?}"),
        },
    }
}

/// The bench budgets: model defaults with the deliberately thin trunk.
fn thin_trunk_budgets() -> FabricBudgets {
    let mut b = CapacityModel::default().fabric_budgets();
    b.trunk_bps = TRUNK_BPS;
    b
}

#[test]
fn flash_crowd_into_thin_trunk_exercises_every_admission_outcome() {
    let mut h = ScallopHarness::new(
        HarnessConfig::default()
            .participants(0)
            .switches(EDGES)
            .cores(1)
            .seed(0xADA117)
            .admission(thin_trunk_budgets()),
    );
    let mut full_viewers = Vec::new();
    let mut thin_viewers = Vec::new();
    let mut refusals = Vec::new();
    for j in hotspot_crowd(EDGES, SENDERS, RECEIVERS) {
        let (decision, idx) = h.try_join_late(j.edge, j.sends);
        // Gentle pacing: GCC needs the previous joiner's warm-up burst
        // absorbed before the next, or early REMBs down-switch layers.
        h.run_for_secs(0.5);
        if j.sends {
            assert_eq!(decision, AdmissionDecision::Admitted, "sender on hot edge");
            continue;
        }
        // The planner's answer is a pure function of the viewer's edge:
        // segment 1 (edge 1) fits full, segment 2 (edge 2) only thin,
        // segment 3 (edge 3) not even thin.
        match j.edge {
            1 => {
                assert_eq!(decision, AdmissionDecision::Admitted, "edge 1 fits full");
                full_viewers.push(idx.expect("admitted viewers get a client"));
            }
            2 => {
                assert_eq!(
                    decision,
                    AdmissionDecision::AdmittedThin,
                    "edge 2 fits only SVC-thin"
                );
                thin_viewers.push(idx.expect("thin viewers get a client"));
            }
            _ => {
                assert!(
                    matches!(
                        decision,
                        AdmissionDecision::Refused(RefusalReason::TrunkOversubscribed { .. })
                    ),
                    "edge {} must be refused on the trunk line, got {decision:?}",
                    j.edge
                );
                assert!(idx.is_none(), "refused joins must not create a client");
                refusals.push(decision);
            }
        }
        // The whole point: enforcement never books a line over budget,
        // not even transiently between joins.
        assert_eq!(h.oversubscribed_links(), 0);
        let (out, _) = h.trunk_load_bps(0);
        assert!(out <= TRUNK_BPS, "hot trunk booked {out} > {TRUNK_BPS}");
    }
    assert_eq!(full_viewers.len(), 3);
    assert_eq!(thin_viewers.len(), 3);
    assert_eq!(refusals.len(), 3);
    let counts = h.admission_counts();
    assert_eq!(counts.admitted_full as usize, SENDERS + full_viewers.len());
    assert_eq!(counts.admitted_thin as usize, thin_viewers.len());
    assert_eq!(counts.refused as usize, refusals.len());
    assert_eq!(counts.refused_trunk, counts.refused, "refusals are typed");

    // Let adaptation settle, then hold every admitted viewer to the
    // contract: full viewers at the fabric floor, thin viewers alive at
    // the reduced rate — degraded, never frozen.
    h.run_for_secs(3.0);
    let window = SimDuration::from_secs(1);
    for (s, label, set, lo, hi) in [
        (0usize, "full", &full_viewers, 25.0, f64::MAX),
        (0, "thin", &thin_viewers, 5.0, 25.0),
    ] {
        for &r in set.iter() {
            let fps = h.fps_between(s, r, window).expect("stream plumbed");
            assert!(
                fps >= lo && fps < hi,
                "{label} viewer {r} at {fps:.1} fps (wanted [{lo}, {hi}))"
            );
        }
    }

    // Full teardown: every debit must come back as a credit.
    for idx in 0..h.client_ids.len() {
        h.leave(idx);
    }
    h.run_for_secs(0.5);
    assert!(h.ledger_reconciled(), "ledger left open entries");
    assert_eq!(h.oversubscribed_links(), 0);
    let (out, inn) = h.trunk_load_bps(0);
    assert_eq!((out, inn), (0, 0), "trunk accounts must drain to zero");
    for e in 0..EDGES {
        assert_eq!(h.ports_booked(e), 0, "edge {e} ports must drain to zero");
    }
}

#[test]
fn advisory_budgets_measure_the_oversubscription_enforcement_prevents() {
    // Identical join sequence, budgets armed for measurement only: no
    // join is refused or thinned, and the ledger shows the hot trunk
    // visibly over budget — the baseline the enforced row is judged
    // against.
    let mut h = ScallopHarness::new(
        HarnessConfig::default()
            .participants(0)
            .switches(EDGES)
            .cores(1)
            .seed(0xADA117)
            .admission(thin_trunk_budgets().advisory()),
    );
    for j in hotspot_crowd(EDGES, SENDERS, RECEIVERS) {
        let (decision, idx) = h.try_join_late(j.edge, j.sends);
        assert_eq!(
            decision,
            AdmissionDecision::Admitted,
            "advisory refuses nothing"
        );
        assert!(idx.is_some());
        h.run_for_secs(0.2);
    }
    let counts = h.admission_counts();
    assert_eq!(counts.admitted_full, (SENDERS + RECEIVERS) as u64);
    assert_eq!(counts.admitted_thin, 0);
    assert_eq!(counts.refused, 0);
    assert!(h.oversubscribed_links() >= 1, "overrun must be visible");
    let (out, _) = h.trunk_load_bps(0);
    assert!(out > TRUNK_BPS, "hot trunk booked {out} <= {TRUNK_BPS}");
    // Measurement-only bookkeeping still balances on teardown.
    for idx in 0..h.client_ids.len() {
        h.leave(idx);
    }
    h.run_for_secs(0.2);
    assert!(h.ledger_reconciled());
    assert_eq!(h.oversubscribed_links(), 0);
}

// --------------------------------------------------------------------
// Randomized ledger invariants
// --------------------------------------------------------------------

/// One event of a randomized membership history.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// A participant asks to join `edge` (sending iff `sends`).
    Join { edge: usize, sends: bool },
    /// The `idx % live`-th admitted participant hangs up.
    Leave { idx: usize },
    /// The controller's ledger-aware re-homing pass runs.
    Rebalance,
    /// The `idx % live`-th participant's decode is capped to the thin
    /// target (the admission-degrade path, driven directly).
    Degrade { idx: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let join = || (0..EDGES, any::<bool>()).prop_map(|(edge, sends)| Op::Join { edge, sends });
    prop_oneof![
        // The vendored proptest's Union is unweighted; repeating the
        // join arm biases histories toward growth like a real meeting.
        join(),
        join(),
        join(),
        any::<usize>().prop_map(|idx| Op::Leave { idx }),
        Just(Op::Rebalance),
        any::<usize>().prop_map(|idx| Op::Degrade { idx }),
    ]
}

/// Tight budgets so random histories actually hit every refusal line:
/// a trunk two full branches exhaust and a port span four members fill.
fn tight_budgets() -> FabricBudgets {
    let mut b = CapacityModel::default().fabric_budgets();
    b.trunk_bps = 15_000_000;
    b.edge_ports = Some(8);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No step of any membership history may book a budget line over,
    /// and once every member has left the ledger must reconcile to
    /// zero — a leak means some leave/GC path lost its credit.
    #[test]
    fn random_histories_never_oversubscribe_and_reconcile(ops in pvec(arb_op(), 1..40)) {
        let mut sim = Simulator::new(0x1ED6E2);
        sim.set_workers(scallop::netsim::sim::workers_from_env());
        let fabric = Fabric::build(
            &mut sim,
            Topology::campus(EDGES, 1),
            LinkConfig::infinite(SimDuration::from_micros(50)),
            SeqRewriteMode::LowRetransmission,
        );
        let mut plane = ShardedControlPlane::new(shards_from_env());
        plane.set_capacity_budgets(tight_budgets(), &fabric.topology);
        let gmid = plane.create_fabric_meeting(&mut sim, &fabric, 0);
        let ledger = plane.ledger_handle();
        // Live members: (global id, home edge, local participant).
        let mut live = Vec::new();
        let mut admitted = 0u32;
        for op in &ops {
            match *op {
                Op::Join { edge, sends } => {
                    let i = admitted;
                    admitted += 1;
                    let addr = HostAddr::new(
                        Ipv4Addr::new(10, 9, (i / 200) as u8, (i % 200 + 1) as u8),
                        5000,
                    );
                    let (decision, grant) =
                        plane.try_join_fabric(&mut sim, &fabric, gmid, edge % EDGES, addr, sends);
                    match (decision, grant) {
                        (AdmissionDecision::Refused(_), g) => prop_assert!(g.is_none()),
                        (_, Some(g)) => live.push((g.global, g.edge, g.local.participant)),
                        (d, None) => prop_assert!(false, "admitted {d:?} without a grant"),
                    }
                }
                Op::Leave { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (global, _, _) = live.remove(idx % live.len());
                    plane.leave_fabric(&mut sim, &fabric, gmid, global);
                }
                Op::Rebalance => {
                    plane.rebalance_fabric(&mut sim, &fabric, gmid);
                }
                Op::Degrade { idx } => {
                    if live.is_empty() {
                        continue;
                    }
                    let (_, edge, pid) = live[idx % live.len()];
                    let sw = fabric.edge_mut(&mut sim, edge);
                    sw.agent.set_dt_cap(&mut sw.dp, pid, THIN_DECODE_TARGET);
                }
            }
            // The invariants, after every single step: enforcement
            // means no line is ever over, and the port book never
            // exceeds the configured span.
            let l = ledger.borrow();
            prop_assert_eq!(l.oversubscribed_links(), 0);
            for e in 0..EDGES {
                prop_assert!(
                    l.ports_used(e) <= 8,
                    "edge {} books {} ports of 8",
                    e,
                    l.ports_used(e)
                );
            }
        }
        // Teardown: the book must balance exactly.
        for (global, _, _) in live.drain(..) {
            plane.leave_fabric(&mut sim, &fabric, gmid, global);
        }
        let l = ledger.borrow();
        prop_assert!(l.reconciled(), "{} open entries after teardown", l.open_entries());
        let c = l.counts();
        prop_assert_eq!(c.refused, c.refused_ports + c.refused_trunk + c.refused_wan);
    }
}

// --------------------------------------------------------------------
// Cross-fabric REMB aggregation
// --------------------------------------------------------------------

/// A 3-edge meeting: sender on edge 0, one viewer per edge — every
/// REMB path (local, and two trunk-fed remote segments) is involved.
fn remb_harness(aggregate: bool) -> ScallopHarness {
    let mut h = ScallopHarness::new(
        HarnessConfig::default()
            .participants(0)
            .switches(3)
            .cores(1)
            .seed(0x2E3B)
            .aggregate_feedback(aggregate),
    );
    h.join_late(0, true);
    for e in 0..3 {
        h.join_late(e, false);
    }
    h
}

#[test]
fn sender_sees_at_most_one_min_filtered_remb_per_window() {
    let mut agg = remb_harness(true);
    agg.run_for_secs(2.0); // warm-up: joins, STUN, first feedback
    let before = agg.client_stats(0).sender.rembs_received;
    agg.run_for_secs(5.0);
    let with_aggregation = agg.client_stats(0).sender.rembs_received - before;
    // 5 s of 100 ms agent windows: at most one REMB each, and feedback
    // flows steadily enough that most windows carry one.
    assert!(
        with_aggregation <= 51,
        "{with_aggregation} REMBs in 50 windows — more than one per window"
    );
    assert!(
        with_aggregation >= 10,
        "only {with_aggregation} REMBs in 5 s — aggregation starved the sender"
    );

    // The same meeting without window pacing forwards every selected
    // REMB copy as it arrives — strictly chattier than one-per-window.
    let mut raw = remb_harness(false);
    raw.run_for_secs(2.0);
    let before = raw.client_stats(0).sender.rembs_received;
    raw.run_for_secs(5.0);
    let without_aggregation = raw.client_stats(0).sender.rembs_received - before;
    assert!(
        without_aggregation > with_aggregation,
        "aggregation must reduce sender-visible REMB chatter \
         ({without_aggregation} raw vs {with_aggregation} aggregated)"
    );
}

#[test]
fn aggregated_remb_is_min_filtered_across_edges() {
    let mut h = remb_harness(true);
    h.run_for_secs(4.0);
    let healthy = h.client_stats(0).sender.target_bitrate_bps;
    // Constrain the edge-2 viewer (client 3) below the stream rate: the
    // slowest involved edge must drag the min filter — and with it the
    // encoder target — down, even though the other two edges still
    // report a healthy estimate.
    h.degrade_downlink(3, 1_200_000);
    h.run_for_secs(8.0);
    let constrained = h.client_stats(0).sender.target_bitrate_bps;
    assert!(
        constrained < healthy,
        "min filter ignored the slow edge: target {constrained} after degrade \
         (was {healthy})"
    );
    assert!(
        constrained <= 1_600_000,
        "target {constrained} not tracking the 1.2 Mb/s bottleneck edge"
    );
    assert!(
        constrained >= 300_000,
        "target {constrained} collapsed below the degraded edge's real rate"
    );
}
