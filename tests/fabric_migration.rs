//! Live fabric migration + segment GC under membership churn.
//!
//! Pins the control-plane lifecycle the campus story needs once
//! meetings get churny:
//!
//! 1. **Re-homing**: a meeting whose receiver population drifts to
//!    another edge is re-homed there (with hysteresis), make-before-
//!    break — cross-switch decode rates never dip below the fabric
//!    integration floor through the cutover.
//! 2. **Reclamation**: once the last local member leaves an edge, the
//!    segment's rules, RIDs, and ports are fully collected — the old
//!    home's trunk counters stop incrementing and its switch returns
//!    to empty occupancy.

use scallop::client::ClientNode;
use scallop::core::harness::{EdgeOccupancy, HarnessConfig, ScallopHarness};
use scallop::netsim::time::SimDuration;

/// Decoder freezes the receiver observed on the one stream arriving
/// from `sender` (freezes on *abandoned* streams — senders that left
/// the meeting mid-GOP — are churn noise, not a migration defect, so
/// tests assert per-stream rather than on the global report).
fn stream_freezes(h: &mut ScallopHarness, sender: usize, receiver: usize) -> u64 {
    let (edge, s_pid, r_pid) = h
        .controller
        .pair_on_receiver_edge(
            h.fabric_meeting,
            h.fabric_grants[sender].global,
            h.fabric_grants[receiver].global,
        )
        .expect("pair resolved");
    let src = {
        let sw = h.fabric.edge_mut(&mut h.sim, edge);
        sw.agent.video_pair_addr(s_pid, r_pid).expect("pair addr")
    };
    let c: &mut ClientNode = h.sim.node_mut(h.client_ids[receiver]).expect("client");
    c.stats()
        .streams
        .iter()
        .find(|(a, _)| *a == src)
        .map(|(_, st)| st.freezes)
        .unwrap_or(0)
}

const EMPTY: EdgeOccupancy = EdgeOccupancy {
    ports_in_use: 0,
    participants: 0,
    meetings: 0,
    pre_groups: 0,
    l2_xids: 0,
    port_rules: 0,
    egress_rules: 0,
};

fn churn_harness() -> ScallopHarness {
    ScallopHarness::new(
        HarnessConfig::default()
            .participants(0)
            .switches(2)
            .cores(1)
            .seed(0x5EED),
    )
}

#[test]
fn drift_rehomes_holds_fps_and_reclaims_old_home() {
    let mut h = churn_harness();
    // Four members (two senders) start in building A (edge 0).
    let _s0 = h.join_late(0, true);
    let _s1 = h.join_late(0, true);
    let _r2 = h.join_late(0, false);
    let r3 = h.join_late(0, false);
    h.run_for_secs(3.0);
    assert_eq!(h.home_edge(), 0);

    // The population drifts to building B: every 2 s one member is
    // replaced by a counterpart on edge 1. The controller rebalances
    // after each change; with hysteresis 1 the re-home must fire when
    // edge 1 reaches a 3-vs-1 majority — not at 2-vs-2.
    let mut rehome: Option<(usize, usize)> = None;
    let mut moved = Vec::new();
    for (i, &leaver) in [_s0, _s1, _r2].iter().enumerate() {
        h.leave(leaver);
        moved.push(h.join_late(1, i < 2));
        let res = h.rebalance();
        if i < 2 {
            assert_eq!(res, None, "hysteresis must hold at swap {i}");
        } else {
            assert_eq!(res, Some((0, 1)), "decisive majority must re-home");
        }
        rehome = rehome.or(res);
        // Run across the membership change, sampling the surviving
        // cross-switch stream (first replacement sender on edge 1 →
        // original receiver r3 on edge 0) through the cutover.
        for _ in 0..4 {
            h.run_for_secs(0.5);
            if i >= 1 {
                let fps = h
                    .fps_between(moved[0], r3, SimDuration::from_secs(1))
                    .expect("monitored cross-switch stream");
                assert!(fps > 24.0, "fps floor broken at swap {i}: {fps}");
            }
        }
    }
    assert_eq!(rehome, Some((0, 1)));
    assert_eq!(h.home_edge(), 1);
    // The monitored stream survived the cutover without a freeze.
    assert_eq!(stream_freezes(&mut h, moved[0], r3), 0);
    // Old home still hosts r3, so its segment must still be live.
    assert!(h.edge_occupancy(0).participants > 0);

    // Final member leaves the old home: now a drained non-home edge —
    // every rule, RID, and port must be reclaimed.
    h.leave(r3);
    let moved3 = h.join_late(1, false);
    assert_eq!(h.edge_occupancy(0), EMPTY, "old home fully reclaimed");

    // The old home's trunk counters freeze: nothing is trunked toward
    // (or from) an edge that hosts no receivers.
    h.run_for_secs(1.0); // drain in-flight packets
    let before0 = h.counters_at(0);
    let before1 = h.counters_at(1);
    h.run_for_secs(3.0);
    let after0 = h.counters_at(0);
    let after1 = h.counters_at(1);
    assert_eq!(
        after0.trunk_in_pkts, before0.trunk_in_pkts,
        "old home keeps receiving trunk media"
    );
    assert_eq!(
        after1.trunk_out_pkts, before1.trunk_out_pkts,
        "new home keeps trunking toward the drained edge"
    );

    // The meeting itself is healthy on its new home: the migrated
    // receivers decode the migrated senders at full rate.
    let fps = h
        .fps_between(moved[0], moved3, SimDuration::from_secs(2))
        .expect("post-migration stream");
    assert!(fps > 24.0, "post-migration fps {fps}");
    // A receiver that joins an ongoing stream mid-GOP may freeze once
    // while it waits for the next key frame; after sync the stream must
    // stay freeze-free.
    let synced = stream_freezes(&mut h, moved[0], moved3);
    assert!(synced <= 1, "at most the mid-GOP join freeze, got {synced}");
    h.run_for_secs(3.0);
    assert_eq!(
        stream_freezes(&mut h, moved[0], moved3),
        synced,
        "no decoder freezes once the post-migration stream is up"
    );
}

#[test]
fn last_remote_member_leaving_collects_segment_without_rebalance() {
    // GC must not depend on the rebalance pass: draining a *non-home*
    // edge collects its segment at leave time.
    let mut h = churn_harness();
    let s0 = h.join_late(0, true);
    let r1 = h.join_late(0, false);
    let r2 = h.join_late(1, false);
    h.run_for_secs(4.0);
    let occupied = h.edge_occupancy(1);
    assert!(occupied.ports_in_use > 0, "remote segment allocates ports");
    let mid = h.counters_at(0);
    assert!(mid.trunk_out_pkts > 0, "cross-switch media trunks");

    h.leave(r2);
    assert_eq!(h.edge_occupancy(1), EMPTY, "remote segment reclaimed");

    // Trunk flow stops entirely once no remote receivers exist.
    h.run_for_secs(1.0);
    let before = h.counters_at(0);
    h.run_for_secs(3.0);
    let after = h.counters_at(0);
    assert_eq!(
        after.trunk_out_pkts, before.trunk_out_pkts,
        "home keeps trunking toward a drained edge"
    );
    // The surviving local pair is unaffected.
    let fps = h
        .fps_between(s0, r1, SimDuration::from_secs(2))
        .expect("local stream");
    assert!(fps > 24.0, "local fps {fps}");
}

#[test]
fn full_meeting_teardown_reclaims_every_edge() {
    let mut h = churn_harness();
    let members = [
        h.join_late(0, true),
        h.join_late(1, true),
        h.join_late(0, false),
        h.join_late(1, false),
    ];
    h.run_for_secs(3.0);
    for &m in &members {
        h.leave(m);
    }
    // Everyone gone: both edges (home included) return to empty.
    assert_eq!(h.edge_occupancy(0), EMPTY);
    assert_eq!(h.edge_occupancy(1), EMPTY);
}
