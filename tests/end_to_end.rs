//! Cross-crate integration tests: full conferencing scenarios through
//! the facade crate, exercising signaling → switch → clients → feedback
//! loops end to end.

use scallop::core::agent::TreeDesign;
use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::dataplane::seqrewrite::SeqRewriteMode;
use scallop::netsim::time::SimDuration;

#[test]
fn three_party_meeting_delivers_all_streams() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xE2E1));
    let report = h.run_for_secs(8.0);
    assert_eq!(report.participants, 3);
    assert_eq!(report.freezes, 0);
    // Every pair decodes near 30 fps.
    for r in 0..3 {
        for s in 0..3 {
            if r == s {
                continue;
            }
            let fps = h
                .fps_between(s, r, SimDuration::from_secs(2))
                .expect("stream");
            assert!((25.0..35.0).contains(&fps), "P{r}<-P{s}: {fps}");
        }
    }
    // Control/data split sanity: Table 1's regime.
    let c = h.switch_counters();
    let total = c.rtp_in_pkts + c.rtcp_sr_pkts + c.rtcp_fb_pkts + c.stun_pkts;
    let dp_share = (c.rtp_in_pkts + c.rtcp_sr_pkts) as f64 / total as f64;
    assert!(dp_share > 0.9, "data-plane share {dp_share}");
}

#[test]
fn ten_party_meeting_scales() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(10).seed(0xE2E2));
    let report = h.run_for_secs(5.0);
    // 10 participants × 9 remote senders, all decoding.
    assert!(report.frames_decoded > 10 * 9 * 100);
    assert_eq!(report.freezes, 0);
    // One shared NRA tree (paired slot) serves the meeting.
    let meeting = h.meeting;
    assert_eq!(h.switch().agent.design_of(meeting), Some(TreeDesign::Nra));
    assert_eq!(h.switch().dp.pre.groups_used(), 1);
    assert_eq!(h.switch().dp.pre.group_size(1), Some(10));
}

#[test]
fn adaptation_is_receiver_local() {
    // Degrading one receiver must not affect the others' quality — the
    // §5.3 point of per-sender feedback splitting.
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(4).seed(0xE2E3));
    h.run_for_secs(3.0);
    h.degrade_downlink(3, 2_600_000);
    h.run_for_secs(12.0);
    let fps_ok = h
        .fps_between(0, 1, SimDuration::from_secs(2))
        .expect("stream");
    assert!(fps_ok > 24.0, "unconstrained receiver degraded: {fps_ok}");
    let constrained = h.grants[3].participant;
    let dt = h.switch().agent.dt_of(constrained).expect("known");
    assert!(dt < 2, "constrained receiver still at DT2");
    // Senders keep their full encoder rate (best-downlink feedback).
    let sender = h.client_stats(0).sender;
    assert!(
        sender.target_bitrate_bps >= 2_000_000,
        "sender was throttled to {}",
        sender.target_bitrate_bps
    );
}

#[test]
fn both_rewrite_modes_work_end_to_end() {
    for mode in [SeqRewriteMode::LowMemory, SeqRewriteMode::LowRetransmission] {
        let mut h = ScallopHarness::new(
            HarnessConfig::default()
                .participants(3)
                .seed(0xE2E4)
                .rewrite_mode(mode),
        );
        h.run_for_secs(3.0);
        h.degrade_downlink(2, 2_600_000);
        let report = h.run_for_secs(10.0);
        let fps = h
            .fps_between(0, 2, SimDuration::from_secs(2))
            .expect("stream");
        assert!(
            (7.0..22.0).contains(&fps),
            "{mode:?}: adapted fps {fps} (report {report:?})"
        );
    }
}

#[test]
fn join_and_leave_mid_call() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xE2E5));
    h.run_for_secs(3.0);
    // A participant leaves: meeting drops to two-party fast path.
    let leaver = h.grants[2].participant;
    let meeting = h.meeting;
    {
        let sw = h.switch();
        sw.leave(meeting, leaver);
        assert_eq!(sw.agent.design_of(meeting), Some(TreeDesign::TwoParty));
        assert_eq!(sw.dp.pre.groups_used(), 0, "trees released");
    }
    h.run_for_secs(3.0);
    // The remaining pair still decodes.
    let fps = h
        .fps_between(0, 1, SimDuration::from_secs(2))
        .expect("stream");
    assert!(fps > 24.0, "post-leave fps {fps}");
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let mut h = ScallopHarness::new(HarnessConfig::default().participants(4).seed(seed));
        let r = h.run_for_secs(4.0);
        let c = h.switch_counters();
        (
            r.frames_decoded,
            r.media_packets_forwarded,
            c.cpu_pkts,
            c.forwarded_bytes,
        )
    };
    assert_eq!(run(1234), run(1234));
    assert_eq!(run(42), run(42));
}
