//! Sharded control plane: ownership, handoff, and media transparency.
//!
//! The campus fabric's control plane partitions meeting ownership over
//! N controller shards (`scallop::core::shard`). This suite pins the
//! three properties that make sharding safe to deploy:
//!
//! 1. **Transparency**: sharding is control-plane bookkeeping only —
//!    the media-plane report of a run is identical for any shard
//!    count.
//! 2. **Handoff under churn**: a churn-driven re-home that crosses a
//!    shard boundary hands the meeting to the hash-chosen shard
//!    make-before-break, and cross-switch decode rates never dip below
//!    the fabric floor (25 fps) through the double cutover
//!    (home edge *and* owning shard move together).
//! 3. **Balance**: meeting ownership stays within the bounded-loads
//!    cap `ceil(meetings/shards) + 1` as meetings come and go.

use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::netsim::time::SimDuration;

/// A 4-edge + 1-core campus with a 4-shard control plane (the
/// acceptance configuration) and no initial participants.
fn campus4(shards: usize) -> ScallopHarness {
    ScallopHarness::new(
        HarnessConfig::default()
            .participants(0)
            .switches(4)
            .cores(1)
            .shards(shards)
            .seed(0x54A2D),
    )
}

#[test]
fn sharding_is_transparent_to_the_media_plane() {
    // Identical runs except for the shard count: every media-plane
    // metric must match exactly, because shards only partition control
    // bookkeeping — no switch rule or packet path depends on them.
    let run = |shards: usize| {
        let mut h = ScallopHarness::new(
            HarnessConfig::default()
                .participants(6)
                .switches(4)
                .cores(1)
                .shards(shards)
                .seed(77),
        );
        let r = h.run_for_secs(3.0);
        (
            r.media_packets_forwarded,
            r.cpu_packets,
            r.frames_decoded,
            r.freezes,
            r.trunk_packets,
        )
    };
    assert_eq!(run(1), run(4), "shard count must not perturb media");
}

#[test]
fn churn_driven_rehome_crosses_a_shard_boundary_at_full_rate() {
    let mut h = campus4(4);
    let gmid = h.fabric_meeting;
    let shard0 = h.shard_of_meeting();
    // Pick the drift target among the remote edges whose hash names a
    // different owner shard, so the re-home must carry a handoff. The
    // hash is fixed, so the pick is deterministic.
    let to = (1..4)
        .find(|&e| h.controller.planned_owner(gmid, e) != shard0)
        .expect("some edge maps to another shard");

    // Four members (two senders) start on the home edge 0.
    let s0 = h.join_late(0, true);
    let s1 = h.join_late(0, true);
    let r2 = h.join_late(0, false);
    let r3 = h.join_late(0, false);
    h.run_for_secs(3.0);
    assert_eq!(h.home_edge(), 0);

    // The population drifts to edge `to`; the first replacement sender
    // toward the last original receiver is the monitored cross-switch
    // stream that lives through the double cutover.
    let mut moved = Vec::new();
    let mut rehomes = 0usize;
    for (i, &leaver) in [s0, s1, r2].iter().enumerate() {
        h.leave(leaver);
        moved.push(h.join_late(to, i < 2));
        if h.rebalance().is_some() {
            rehomes += 1;
        }
        for _ in 0..4 {
            h.run_for_secs(0.5);
            if i >= 1 {
                let fps = h
                    .fps_between(moved[0], r3, SimDuration::from_secs(1))
                    .expect("monitored cross-switch stream");
                assert!(fps > 25.0, "fps floor broken at swap {i}: {fps}");
            }
        }
    }
    assert_eq!(rehomes, 1, "exactly the decisive majority re-homes");
    assert_eq!(h.home_edge(), to);

    // The ownership handoff rode along with the re-home.
    let shard1 = h.shard_of_meeting();
    assert_ne!(shard1, shard0, "re-home must cross the shard boundary");
    assert_eq!(h.shard_handoffs(), 1, "one make-before-break handoff");
    assert_eq!(
        h.controller.shard(shard1).meetings_acquired,
        1,
        "the new owner acquired the meeting"
    );
    assert_eq!(
        h.controller.shard(shard0).meetings_released,
        1,
        "the old owner released it after the acquire"
    );

    // The meeting stays fully operational under its new owner: joins,
    // leaves, segment GC, and full-rate decode all work.
    h.leave(r3);
    let late = h.join_late(to, false);
    h.run_for_secs(3.0);
    let fps = h
        .fps_between(moved[0], late, SimDuration::from_secs(2))
        .expect("post-handoff stream");
    assert!(fps > 25.0, "post-handoff fps {fps}");
    assert_eq!(
        h.edge_occupancy(0).participants,
        0,
        "drained old home reclaimed through the new owner"
    );
}

#[test]
fn scatter_churn_forwards_cross_shard_joins_and_keeps_ownership_coherent() {
    use scallop::workload::churn::{ChurnEvent, ChurnPlan};

    // A meeting rotated over all four edges: joins keep landing on
    // ingress shards that do not own the meeting (forwarded to the
    // owner), and every transient-majority re-home the rotation causes
    // keeps the ownership bookkeeping coherent.
    let mut h = campus4(4);
    let gmid = h.fabric_meeting;
    let plan = ChurnPlan::scatter(4, 8, 4, h.now(), SimDuration::from_secs(1));
    let mut slots: Vec<usize> = Vec::new();
    let mut rehomed_total = 0usize;
    let mut handoffs_total = 0usize;
    for &(at, ev) in &plan.events {
        while h.now() < at {
            let step = SimDuration::from_millis(500).min(at.saturating_since(h.now()));
            h.sim.run_for(step);
        }
        match ev {
            ChurnEvent::Join { edge, sends } => slots.push(h.join_late(edge, sends)),
            ChurnEvent::Leave { slot } => h.leave(slots[slot]),
        }
        // The all-meetings pass returns its counts; they must add up.
        let summary = h.rebalance_all();
        assert!(summary.shard_handoffs <= summary.rehomed);
        rehomed_total += summary.rehomed;
        handoffs_total += summary.shard_handoffs;
        // Ownership invariant after every event: exactly the owner
        // shard tracks the meeting.
        let owner = h.controller.owner_of(gmid).expect("meeting owned");
        let tracked: Vec<usize> = (0..4)
            .filter(|&s| h.controller.shard(s).meetings_owned() > 0)
            .collect();
        assert_eq!(tracked, vec![owner], "only the owner tracks the meeting");
    }
    h.run_for_secs(1.0);
    assert!(
        h.shard_forwards() > 0,
        "scatter churn must drive cross-shard joins"
    );
    // Acquire/release telemetry must account for every handoff, and
    // the per-pass summaries must sum to the plane totals — the counts
    // rebalance_all returns are live, not decorative.
    let acquired: u64 = (0..4)
        .map(|s| h.controller.shard(s).meetings_acquired)
        .sum();
    let released: u64 = (0..4)
        .map(|s| h.controller.shard(s).meetings_released)
        .sum();
    assert_eq!(acquired, h.shard_handoffs());
    assert_eq!(released, h.shard_handoffs());
    assert_eq!(handoffs_total as u64, h.shard_handoffs());
    assert!(rehomed_total >= handoffs_total);
    let report = h.report();
    assert!(report.frames_decoded > 500, "the meeting stays healthy");
    assert_eq!(h.controller.fabric_members(gmid).len(), 8);
}

#[test]
fn ownership_stays_balanced_as_meetings_accumulate() {
    let mut h = campus4(4);
    // The harness meeting plus 10 more, homed round-robin.
    for i in 0..10 {
        h.controller
            .create_fabric_meeting(&mut h.sim, &h.fabric, i % 4);
    }
    let counts = h.shard_meeting_counts();
    let total: usize = counts.iter().sum();
    assert_eq!(total, 11);
    let cap = total.div_ceil(4) + 1;
    assert!(
        counts.iter().all(|&c| c <= cap),
        "cap ceil({total}/4)+1 = {cap} violated: {counts:?}"
    );
    // Re-sharding to 5 keeps every meeting reachable and balanced.
    let moved = h.controller.set_shard_count(&mut h.sim, &h.fabric, 5);
    assert!(moved > 0, "growing must populate the new shard");
    let counts = h.shard_meeting_counts();
    assert_eq!(counts.iter().sum::<usize>(), 11);
    assert_eq!(counts.len(), 5);
}
