//! Fabric integration: a meeting spanning two edge switches.
//!
//! The campus-scale claim rests on two properties this suite pins down
//! end to end:
//!
//! 1. **Quality**: every cross-switch stream decodes near the full
//!    30 fps — the trunk hop is transparent to receivers.
//! 2. **Trunk economy**: uplink media crosses the fabric **once per
//!    remote switch**, not once per remote receiver; the remote edge's
//!    own PRE performs the per-receiver fan-out.

use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::netsim::time::SimDuration;

/// One sender on edge 0, three receivers sharded across both edges
/// (P1, P3 on edge 1; P2 on edge 0), one core relay.
fn two_edge_harness() -> ScallopHarness {
    ScallopHarness::new(
        HarnessConfig::default()
            .participants(4)
            .senders(1)
            .switches(2)
            .cores(1)
            .seed(42),
    )
}

#[test]
fn cross_switch_streams_decode_near_full_rate() {
    let mut h = two_edge_harness();
    h.run_for_secs(5.0);
    assert_eq!(h.edge_of(0), 0);
    assert_eq!(h.edge_of(1), 1);
    assert_eq!(h.edge_of(3), 1);
    // Cross-switch receivers (P1, P3 on edge 1, sender on edge 0).
    for r in [1, 3] {
        let fps = h
            .fps_between(0, r, SimDuration::from_secs(2))
            .expect("cross-switch stream exists");
        assert!((25.0..35.0).contains(&fps), "P0->P{r} fps {fps}");
    }
    // The co-located receiver is unaffected by the fabric.
    let local = h
        .fps_between(0, 2, SimDuration::from_secs(2))
        .expect("local stream exists");
    assert!(local > 25.0, "P0->P2 fps {local}");
    let report = h.report();
    assert_eq!(report.freezes, 0, "no decoder freezes across the fabric");
}

#[test]
fn trunk_carries_one_copy_per_remote_switch_not_per_receiver() {
    let mut h = two_edge_harness();
    h.run_for_secs(5.0);

    let home = h.counters_at(0);
    let remote = h.counters_at(1);

    // Everything the sender offered (video + audio + SRs) crosses the
    // trunk exactly once: edge 1 hosts TWO receivers of P0, so
    // per-receiver trunking would emit ~2x. Allow a sliver for packets
    // in flight at the cutoff.
    let offered = home.rtp_in_pkts + home.rtcp_sr_pkts;
    assert!(home.trunk_out_pkts > 0, "trunk must carry media");
    assert!(
        home.trunk_out_pkts <= offered,
        "trunk copies ({}) must not exceed sender packets ({offered})",
        home.trunk_out_pkts
    );
    assert!(
        home.trunk_out_pkts as f64 >= 0.95 * offered as f64,
        "trunk copies ({}) should track sender packets ({offered})",
        home.trunk_out_pkts
    );
    // Byte symmetry: what edge 0 trunks out, edge 1 takes in.
    assert!(
        (remote.trunk_in_bytes as f64 - home.trunk_out_bytes as f64).abs()
            <= 0.02 * home.trunk_out_bytes as f64,
        "trunk bytes out {} vs in {}",
        home.trunk_out_bytes,
        remote.trunk_in_bytes
    );
    // The remote edge's PRE performs the per-receiver fan-out: its two
    // local receivers each get a copy of every trunked media packet.
    assert!(
        remote.forwarded_pkts as f64 >= 1.8 * remote.trunk_in_pkts as f64,
        "remote fan-out {} from {} trunk packets",
        remote.forwarded_pkts,
        remote.trunk_in_pkts
    );
    // The core relay carried exactly the trunk traffic.
    let core = h.fabric.core_stats(&mut h.sim, 0);
    assert_eq!(core.unroutable_pkts, 0);
    assert!(
        (core.relayed_pkts as f64 - home.trunk_out_pkts as f64).abs()
            <= 0.02 * home.trunk_out_pkts as f64,
        "core relayed {} vs trunk out {}",
        core.relayed_pkts,
        home.trunk_out_pkts
    );
}

#[test]
fn single_switch_config_reports_no_trunk_traffic() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(4).seed(42));
    let report = h.run_for_secs(3.0);
    assert_eq!(report.trunk_packets, 0);
    let c = h.switch_counters();
    assert_eq!(c.trunk_out_pkts, 0);
    assert_eq!(c.trunk_in_pkts, 0);
}

#[test]
fn remote_receiver_adaptation_stays_local_to_its_edge() {
    // Degrade a remote receiver: its own edge migrates to RA-R and thins
    // the stream after the trunk; the sender's home edge keeps trunking
    // full quality (the trunk branch never adapts).
    let mut h = two_edge_harness();
    h.run_for_secs(3.0);
    // P1 receives one ~2.2 Mbit/s stream; 1.2 Mbit/s fits only the
    // 15 fps tier (like Fig. 14's decisive degradation).
    h.degrade_downlink(1, 1_200_000);
    h.run_for_secs(10.0);

    let meeting = h.fabric_meeting;
    let (edge, _s_pid, r_pid) = h
        .controller
        .pair_on_receiver_edge(
            meeting,
            h.fabric_grants[0].global,
            h.fabric_grants[1].global,
        )
        .expect("pair resolved");
    assert_eq!(edge, 1, "receiver adapts on its own edge");
    let dt = h
        .switch_at(1)
        .agent
        .dt_of(r_pid)
        .expect("receiver tracked on its edge");
    assert!(
        dt < 2,
        "remote receiver's decode target must drop, got {dt}"
    );

    // Full quality still crosses the trunk: trunk bytes track the
    // sender's offered bytes, not the thinned stream.
    let home = h.counters_at(0);
    let offered = home.rtp_in_pkts + home.rtcp_sr_pkts;
    assert!(
        home.trunk_out_pkts as f64 >= 0.95 * offered as f64,
        "trunk still carries full quality ({} of {offered})",
        home.trunk_out_pkts
    );
    // The other cross-switch receiver keeps full rate.
    let fps03 = h
        .fps_between(0, 3, SimDuration::from_secs(2))
        .expect("stream exists");
    assert!(fps03 > 24.0, "unconstrained remote receiver fps {fps03}");
}
