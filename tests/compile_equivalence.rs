//! Compile-path equivalence: the delta compiler must be a pure
//! optimization of the control plane.
//!
//! Every run here replays one membership history twice over identical
//! fabrics — once with the delta compiler (grafted joins, pruned
//! leaves, re-aimed trunks), once with
//! [`SwitchAgent::set_incremental_compile`]`(false)` so every change
//! recompiles its whole segment — and demands the final data-plane
//! state be **byte-identical** on every edge, down to participant ids,
//! PRE tree contents, and feedback gates (via
//! [`SwitchAgent::canonical_state`]). Histories are both handcrafted
//! (the 64-join flash-crowd storm, a drift + re-home) and
//! proptest-randomized join/leave/re-home sequences.
//!
//! The suite honors `SCALLOP_SHARDS` (CI runs the whole corpus under
//! `SCALLOP_SHARDS=4`) and, through the simulator, `SCALLOP_WORKERS` —
//! compilation must be identical no matter how the control plane is
//! partitioned.
//!
//! [`SwitchAgent::set_incremental_compile`]: scallop::core::agent::SwitchAgent::set_incremental_compile
//! [`SwitchAgent::canonical_state`]: scallop::core::agent::SwitchAgent::canonical_state

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use scallop::core::fabric::Fabric;
use scallop::core::shard::ShardedControlPlane;
use scallop::dataplane::seqrewrite::SeqRewriteMode;
use scallop::netsim::link::LinkConfig;
use scallop::netsim::packet::HostAddr;
use scallop::netsim::sim::Simulator;
use scallop::netsim::time::SimDuration;
use scallop::netsim::topology::Topology;
use scallop::workload::flashcrowd::{flash_crowd, webinar};
use std::net::Ipv4Addr;

/// Edge switches of the test fabric.
const EDGES: usize = 3;

/// Shard count under test (1 unless `SCALLOP_SHARDS` says otherwise —
/// the same knob the harness corpus honors).
fn shards_from_env() -> usize {
    match std::env::var("SCALLOP_SHARDS") {
        Err(_) => 1,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("SCALLOP_SHARDS must be a positive integer, got {raw:?}"),
        },
    }
}

/// One membership event of a replayed history.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// A participant joins `edge` (sending iff `sends`).
    Join { edge: usize, sends: bool },
    /// The `idx % live`-th admitted-and-present participant hangs up.
    Leave { idx: usize },
    /// The controller's re-homing pass runs over the meeting.
    Rebalance,
}

/// Replay `ops` into one fabric meeting and return the per-edge
/// canonical data-plane + agent state dumps. Fabric, seed, and
/// addressing are fixed: two runs differing only in `incremental`
/// admit byte-identical membership through identical participant ids.
fn run_ops(ops: &[Op], incremental: bool) -> Vec<String> {
    let mut sim = Simulator::new(0xDE17A);
    sim.set_workers(scallop::netsim::sim::workers_from_env());
    let fabric = Fabric::build(
        &mut sim,
        Topology::campus(EDGES, 1),
        LinkConfig::infinite(SimDuration::from_micros(50)),
        SeqRewriteMode::LowRetransmission,
    );
    let mut controller = ShardedControlPlane::new(shards_from_env());
    if !incremental {
        for e in 0..EDGES {
            fabric
                .edge_mut(&mut sim, e)
                .agent
                .set_incremental_compile(false);
        }
    }
    let gmid = controller.create_fabric_meeting(&mut sim, &fabric, 0);
    let mut live = Vec::new();
    let mut admitted = 0u32;
    for op in ops {
        match *op {
            Op::Join { edge, sends } => {
                let i = admitted;
                admitted += 1;
                let addr = HostAddr::new(
                    Ipv4Addr::new(10, 8, (i / 200) as u8, (i % 200 + 1) as u8),
                    5000,
                );
                let g = controller.join_fabric(&mut sim, &fabric, gmid, edge % EDGES, addr, sends);
                live.push(g.global);
            }
            Op::Leave { idx } => {
                if live.is_empty() {
                    continue;
                }
                let global = live.remove(idx % live.len());
                controller.leave_fabric(&mut sim, &fabric, gmid, global);
            }
            Op::Rebalance => {
                controller.rebalance_fabric(&mut sim, &fabric, gmid);
            }
        }
    }
    (0..EDGES)
        .map(|e| {
            let node = fabric.edge_mut(&mut sim, e);
            node.agent.canonical_state(&node.dp)
        })
        .collect()
}

/// Assert both compile paths land on the same state, edge by edge.
fn assert_paths_agree(ops: &[Op]) {
    let inc = run_ops(ops, true);
    let full = run_ops(ops, false);
    for (e, (i, f)) in inc.iter().zip(&full).enumerate() {
        assert_eq!(i, f, "edge {e} state diverged between compile paths");
    }
}

#[test]
fn flash_crowd_storm_compiles_identically() {
    let ops: Vec<Op> = flash_crowd(EDGES, 3, 61)
        .into_iter()
        .map(|j| Op::Join {
            edge: j.edge,
            sends: j.sends,
        })
        .collect();
    assert_paths_agree(&ops);
}

#[test]
fn webinar_with_churn_compiles_identically() {
    // The webinar audience churns: every 6th viewer leaves again.
    let mut ops: Vec<Op> = webinar(EDGES, 30)
        .into_iter()
        .map(|j| Op::Join {
            edge: j.edge,
            sends: j.sends,
        })
        .collect();
    for k in 0..5 {
        ops.push(Op::Leave { idx: 6 * k + 1 });
    }
    assert_paths_agree(&ops);
}

#[test]
fn drift_and_rehome_compiles_identically() {
    // Population drifts from edge 0 to edge 1 with a re-home pass after
    // every event — the trunk re-aim (make-before-break vs. the delta
    // path's pointer swing) must land on the same rules.
    let mut ops = vec![
        Op::Join {
            edge: 0,
            sends: true,
        },
        Op::Join {
            edge: 0,
            sends: true,
        },
        Op::Join {
            edge: 0,
            sends: false,
        },
        Op::Join {
            edge: 0,
            sends: false,
        },
    ];
    for i in 0..4 {
        ops.push(Op::Join {
            edge: 1,
            sends: i < 2,
        });
        ops.push(Op::Leave { idx: 0 });
        ops.push(Op::Rebalance);
    }
    assert_paths_agree(&ops);
}

fn arb_op() -> impl Strategy<Value = Op> {
    let join = || (0..EDGES, any::<bool>()).prop_map(|(edge, sends)| Op::Join { edge, sends });
    prop_oneof![
        // The vendored proptest's Union is unweighted; repeating the
        // join arm biases histories toward growth like a real meeting.
        join(),
        join(),
        join(),
        any::<usize>().prop_map(|idx| Op::Leave { idx }),
        Just(Op::Rebalance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any randomized join/leave/re-home history compiles to the same
    /// final data-plane state through grafts as through full rebuilds.
    #[test]
    fn random_histories_compile_identically(ops in pvec(arb_op(), 1..48)) {
        assert_paths_agree(&ops);
    }
}

#[test]
fn batched_storm_admission_matches_sequential_reference() {
    // The bench control smoke runs the same storm through sequential
    // incremental, sequential full-rebuild, and batched admission;
    // its equivalence bits are the cross-check that batching changes
    // the compile count, never the compiled state. Run it with the
    // matrix shard count so `SCALLOP_SHARDS=4` exercises burst
    // grouping by owner shard.
    for row in scallop_bench::control::run_control_smoke(shards_from_env()) {
        assert_eq!(
            row.equivalent, 1,
            "scenario {}: delta compile diverged from rebuild",
            row.scenario
        );
        assert_eq!(
            row.batch_equivalent, 1,
            "scenario {}: batched admission diverged from its rebuild reference",
            row.scenario
        );
        assert!(
            row.incr_grafts > 0,
            "scenario {}: the delta compiler never grafted",
            row.scenario
        );
    }
}
