//! Integration tests at the protocol boundary: what actually crosses the
//! wire between clients and the Scallop switch must be valid, parseable
//! RTP/RTCP/STUN — verified by capturing live simulation traffic.

use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::netsim::trace::TraceSink;
use scallop::proto::demux::{classify, PacketClass};
use scallop::proto::rtp::RtpPacket;
use scallop::proto::{rtcp, stun};

#[test]
fn every_wire_packet_is_classifiable_and_parseable() {
    let mut h = ScallopHarness::new(HarnessConfig::default().participants(3).seed(0xC0DE));
    h.sim.trace = TraceSink::bounded(200_000);
    h.run_for_secs(3.0);

    // The TraceSink records every delivery's sizes; check the wire
    // accounting invariant across all captured traffic.
    let records = h.sim.trace.records();
    assert!(records.len() > 5_000, "captured {}", records.len());
    for r in records {
        assert!(r.payload_bytes > 0);
        assert!(r.wire_bytes == r.payload_bytes + 42);
    }

    // And the client-side tap sees a healthy stream of parseable RTP
    // (the tap only records packets that already parsed as RTP).
    let mut h2 = ScallopHarness::new(HarnessConfig::default().participants(2).seed(0xC0DF));
    {
        let cid = h2.client_ids[1];
        let c: &mut scallop::client::ClientNode = h2.sim.node_mut(cid).expect("client");
        c.rx_tap = Some(Vec::new());
    }
    h2.run_for_secs(2.0);
    let cid = h2.client_ids[1];
    let c: &mut scallop::client::ClientNode = h2.sim.node_mut(cid).expect("client");
    let tap = c.rx_tap.take().expect("tap");
    assert!(tap.len() > 500);
}

#[test]
fn switch_emits_valid_rtp_with_intact_payloads() {
    // Drive the data plane directly and parse everything it emits.
    use scallop::core::agent::SwitchAgent;
    use scallop::dataplane::seqrewrite::SeqRewriteMode;
    use scallop::dataplane::switch::ScallopDataPlane;
    use scallop::media::encoder::{EncoderConfig, VideoEncoder};
    use scallop::media::packetizer::Packetizer;
    use scallop::netsim::packet::{HostAddr, Packet};
    use scallop::netsim::time::SimTime;
    use std::net::Ipv4Addr;

    let mut dp = ScallopDataPlane::new(SeqRewriteMode::LowRetransmission);
    let mut agent = SwitchAgent::new(Ipv4Addr::new(10, 0, 0, 100));
    let m = agent.create_meeting();
    let addr = |l: u8| HostAddr::new(Ipv4Addr::new(10, 7, 0, l), 5000);
    let g1 = agent.join(&mut dp, m, addr(1), true);
    let _g2 = agent.join(&mut dp, m, addr(2), true);
    let g3 = agent.join(&mut dp, m, addr(3), true);
    agent.apply_dt_change(&mut dp, g3.participant, 1);

    let mut enc = VideoEncoder::new(EncoderConfig::default());
    let mut pz = Packetizer::new(0xAA, 96, 1200);
    let mut t = SimTime::ZERO;
    let mut emitted = 0u64;
    for _ in 0..120 {
        let frame = enc.produce(t);
        for pkt in pz.packetize(&frame) {
            let original = pkt.clone();
            let out = dp.process(&Packet::new(addr(1), g1.video_uplink, pkt.serialize()));
            for fwd in out.forwards {
                emitted += 1;
                // Every emitted media packet parses as valid RTP…
                let parsed = RtpPacket::parse(&fwd.payload).expect("valid RTP");
                // …with the payload bytes untouched (Zoom-style exact
                // copies, §3) and only headers rewritten.
                assert_eq!(parsed.payload, original.payload);
                assert_eq!(parsed.ssrc, original.ssrc);
                assert_eq!(classify(&fwd.payload), PacketClass::Rtp);
            }
        }
        t += enc.frame_interval();
    }
    assert!(emitted > 1_000, "emitted {emitted}");
}

#[test]
fn wire_formats_cross_validate() {
    // RTCP and STUN built by the client stack parse with the standalone
    // parsers (no private framing).
    let nack = rtcp::RtcpPacket::Nack(rtcp::Nack::from_lost_sequences(1, 2, &[5, 6, 9]));
    let bytes = rtcp::serialize_compound(std::slice::from_ref(&nack));
    assert_eq!(classify(&bytes), PacketClass::Rtcp);
    assert_eq!(rtcp::parse_compound(&bytes).expect("parse"), vec![nack]);

    let req = stun::StunMessage::binding_request([3; 12]);
    let bytes = req.serialize();
    assert_eq!(classify(&bytes), PacketClass::Stun);
    assert_eq!(stun::StunMessage::parse(&bytes).expect("parse"), req);
}
