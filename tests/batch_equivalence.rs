//! Batch-path equivalence: the batched forwarding engine must be a
//! pure optimization.
//!
//! Three layers of teeth:
//!
//! 1. **Data plane**: `process_batch` over a mixed RTP/RTCP/STUN/
//!    unknown burst produces byte-identical forwards, the same punts
//!    (as ring indices), and identical counters to N sequential
//!    `process_into` calls — handcrafted mixes and proptest-randomized
//!    batches alike, with dense SoA registers enabled on the batched
//!    side only (so the test also proves dense == exact-table).
//! 2. **Fabric**: a multi-worker harness run reproduces the
//!    single-worker run exactly (the wave barrier is deterministic).
//! 3. **Baselines**: the live fabric slice reproduces the checked-in
//!    `results/fig20_21_fabric_slice.json` byte-for-byte regardless of
//!    `SCALLOP_WORKERS` — CI runs this suite under `SCALLOP_WORKERS=4`.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use scallop::core::agent::{JoinGrant, SwitchAgent};
use scallop::core::harness::{HarnessConfig, ScallopHarness};
use scallop::dataplane::batch::BatchOutput;
use scallop::dataplane::seqrewrite::SeqRewriteMode;
use scallop::dataplane::switch::{DataPlaneOutput, ScallopDataPlane};
use scallop::media::encoder::{EncodedFrame, FrameLabelCompact};
use scallop::media::packetizer::Packetizer;
use scallop::netsim::packet::{HostAddr, Packet};
use scallop::netsim::time::SimTime;
use scallop::workload::campus::{CampusModel, CampusParams};
use scallop_bench::baseline::parse_numeric_objects;
use scallop_bench::fabric::{peak_time, run_fabric_slice};
use std::net::Ipv4Addr;

const PORT_BASE: u16 = 10_000;
const PORT_LIMIT: u16 = 12_000;

/// An n-party all-sending meeting built through the real agent; the
/// same construction on every call, so two calls yield identical rule
/// tables.
fn meeting(n: usize) -> (ScallopDataPlane, SwitchAgent, Vec<(HostAddr, JoinGrant)>) {
    let mut dp = ScallopDataPlane::new(SeqRewriteMode::LowRetransmission);
    let mut agent =
        SwitchAgent::new(Ipv4Addr::new(10, 0, 0, 100)).with_port_range(PORT_BASE, PORT_LIMIT);
    let m = agent.create_meeting();
    let mut members = Vec::new();
    for i in 0..n {
        let addr = HostAddr::new(Ipv4Addr::new(10, 9, 0, (i + 1) as u8), 5000);
        let g = agent.join(&mut dp, m, addr, true);
        members.push((addr, g));
    }
    (dp, agent, members)
}

fn video_bytes(ssrc: u32, seq: u16, template_id: u8, is_key: bool) -> Vec<u8> {
    let mut pz = Packetizer::new(ssrc, 96, 1200);
    pz.set_next_seq(seq);
    let frames = pz.packetize(&EncodedFrame {
        frame_number: seq,
        label: FrameLabelCompact {
            temporal_id: match template_id {
                0 | 1 => 0,
                2 => 1,
                _ => 2,
            },
            template_id,
            is_key,
        },
        size_bytes: 900,
        captured_at: SimTime::ZERO,
        rtp_timestamp: seq as u32 * 3000,
    });
    frames[0].serialize()
}

/// Run the same batch through both entry points on identically-built
/// data planes (dense registers on the batched one) and assert full
/// equivalence: forwards, punt ring, counters, parse depth.
fn assert_equivalent(pkts: &[Packet], parties: usize) {
    let (mut seq_dp, _, _) = meeting(parties);
    let (mut bat_dp, _, _) = meeting(parties);
    bat_dp.enable_dense_ports(PORT_BASE, PORT_LIMIT);

    let mut seq_fwd = Vec::new();
    let mut seq_punts = Vec::new();
    let mut out = DataPlaneOutput::default();
    for (i, pkt) in pkts.iter().enumerate() {
        seq_dp.process_into(pkt, &mut out);
        seq_fwd.append(&mut out.forwards);
        if !out.cpu_copies.is_empty() {
            seq_punts.push(i as u32);
        }
    }

    let mut bout = BatchOutput::default();
    bat_dp.process_batch(pkts, &mut bout);

    assert_eq!(bout.forwards, seq_fwd, "forwarded packets diverged");
    assert_eq!(bout.cpu_punts, seq_punts, "punt ring diverged");
    assert_eq!(bat_dp.counters, seq_dp.counters, "counters diverged");
    assert_eq!(
        bat_dp.max_parse_depth, seq_dp.max_parse_depth,
        "parse depth diverged"
    );
}

#[test]
fn mixed_traffic_batch_matches_sequential() {
    let (_, agent, members) = meeting(6);
    let mut pkts = Vec::new();
    // Multi-packet flows from every sender: repeats exercise the port
    // and flow caches; the key frame's extended DD punts mid-batch.
    for round in 0..4u16 {
        for (i, (addr, grant)) in members.iter().enumerate() {
            let template = [1u8, 3, 2, 4][(round as usize + i) % 4];
            let is_key = round == 0 && i == 2;
            for burst in 0..3u16 {
                pkts.push(Packet::new(
                    *addr,
                    grant.video_uplink,
                    video_bytes(
                        0x1000 + i as u32,
                        round * 8 + burst,
                        if is_key { 0 } else { template },
                        is_key,
                    ),
                ));
            }
        }
        // STUN probe (punts) and an unparseable packet (drops).
        pkts.push(Packet::new(
            members[0].0,
            HostAddr::new(Ipv4Addr::new(10, 0, 0, 100), PORT_BASE),
            scallop::proto::stun::StunMessage::binding_request([round as u8; 12]).serialize(),
        ));
        pkts.push(Packet::new(
            members[0].0,
            HostAddr::new(Ipv4Addr::new(10, 0, 0, 100), PORT_BASE + 3),
            vec![0xFF; 16],
        ));
        // Feedback traffic: receiver 1 NACKs sender 0.
        let s0 = members[0].0;
        if let Some(fb) = agent.video_pair_addr(members[0].1.participant, members[1].1.participant)
        {
            let nack = scallop::proto::rtcp::serialize(&scallop::proto::rtcp::RtcpPacket::Nack(
                scallop::proto::rtcp::Nack {
                    sender_ssrc: 2,
                    media_ssrc: 0x1000,
                    entries: vec![(round, 0)],
                },
            ));
            pkts.push(Packet::new(s0, fb, nack));
        }
    }
    assert_equivalent(&pkts, 6);
}

#[test]
fn bench_smoke_runner_reports_equivalent() {
    let (report, _) = scallop_bench::dataplane::run_batch_smoke(10, 4);
    assert_eq!(report.equivalent, 1);
    assert!(report.port_lookups_saved > 0, "port cache never hit");
    assert!(report.pre_walks_saved > 0, "flow cache never hit");
    assert!(report.egress_lookups_saved > 0, "egress replay never hit");
    assert!(report.dense_lookups > 0, "dense registers never hit");
}

/// One randomized packet: who sends, what kind, and the knobs the
/// parser/match pipeline branches on.
#[derive(Debug, Clone)]
enum Gen {
    Video {
        sender: usize,
        seq: u16,
        template: u8,
        is_key: bool,
    },
    Stun {
        port_off: u16,
    },
    Garbage {
        port_off: u16,
        bytes: Vec<u8>,
    },
}

fn arb_pkt(parties: usize) -> impl Strategy<Value = Gen> {
    let video = || {
        (0..parties, any::<u16>(), 0u8..5, any::<bool>()).prop_map(
            |(sender, seq, template, is_key)| Gen::Video {
                sender,
                seq,
                template,
                is_key,
            },
        )
    };
    prop_oneof![
        // The vendored proptest's Union is unweighted; repeating the
        // video arm biases the mix toward media like a real burst.
        video(),
        video(),
        video(),
        (0u16..64).prop_map(|port_off| Gen::Stun { port_off }),
        ((0u16..64), pvec(any::<u8>(), 0..40))
            .prop_map(|(port_off, bytes)| Gen::Garbage { port_off, bytes }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any batch of randomized video/STUN/garbage traffic — valid and
    /// invalid ports, key frames that punt, templates across all
    /// tiers — is processed identically by both paths.
    #[test]
    fn random_batches_are_equivalent(gens in pvec(arb_pkt(5), 1..80)) {
        let (_, _, members) = meeting(5);
        let pkts: Vec<Packet> = gens
            .iter()
            .map(|g| match g {
                Gen::Video { sender, seq, template, is_key } => Packet::new(
                    members[*sender].0,
                    members[*sender].1.video_uplink,
                    video_bytes(0x1000 + *sender as u32, *seq, *template, *is_key),
                ),
                Gen::Stun { port_off } => Packet::new(
                    members[0].0,
                    HostAddr::new(Ipv4Addr::new(10, 0, 0, 100), PORT_BASE + port_off),
                    scallop::proto::stun::StunMessage::binding_request([7; 12]).serialize(),
                ),
                Gen::Garbage { port_off, bytes } => Packet::new(
                    members[0].0,
                    HostAddr::new(Ipv4Addr::new(10, 0, 0, 100), PORT_BASE + port_off),
                    bytes.clone(),
                ),
            })
            .collect();
        assert_equivalent(&pkts, 5);
    }
}

#[test]
fn multi_worker_harness_matches_single_worker() {
    let run = |workers: usize| {
        let mut h = ScallopHarness::new(
            HarnessConfig::default()
                .participants(12)
                .senders(4)
                .switches(3)
                .cores(1)
                .seed(7)
                .workers(workers),
        );
        let r = h.run_for_secs(3.0);
        (format!("{r:?}"), h.total_counters())
    };
    let (report1, counters1) = run(1);
    for workers in [2, 4] {
        let (report_n, counters_n) = run(workers);
        assert_eq!(report_n, report1, "{workers}-worker report diverged");
        assert_eq!(counters_n, counters1, "{workers}-worker counters diverged");
    }
}

#[test]
fn fabric_slice_reproduces_checked_in_baseline() {
    // Same configuration as `bench_smoke` and the fig20/21 binary; the
    // simulator honors SCALLOP_WORKERS, so running this test under
    // `SCALLOP_WORKERS=4` (as CI does) proves the multi-worker edge
    // mode reproduces the single-worker baseline byte-for-byte.
    let params = CampusParams::default();
    let population = CampusModel::new(params, 0x7AB20).generate();
    let bin = scallop::netsim::time::SimDuration::from_secs(600);
    let (meetings, _) = CampusModel::concurrency_series(&population, bin);
    let peak_t = peak_time(&meetings);
    let slice = run_fabric_slice(&population, &params, peak_t, 4, 4, 2.0);

    let text = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("results/fig20_21_fabric_slice.json"),
    )
    .expect("checked-in baseline exists");
    let baseline = parse_numeric_objects(&text);
    assert_eq!(baseline.len(), slice.edge_rows.len());
    for (row, base) in slice.edge_rows.iter().zip(&baseline) {
        let field = |k: &str| base.get(k).copied().unwrap_or(f64::NAN);
        assert_eq!(row.edge as f64, field("edge"));
        assert_eq!(
            row.meetings_homed as f64,
            field("meetings_homed"),
            "edge {}",
            row.edge
        );
        assert_eq!(
            row.rtp_in_pkts as f64,
            field("rtp_in_pkts"),
            "edge {}",
            row.edge
        );
        assert_eq!(
            row.forwarded_pkts as f64,
            field("forwarded_pkts"),
            "edge {}",
            row.edge
        );
        assert_eq!(
            row.trunk_out_pkts as f64,
            field("trunk_out_pkts"),
            "edge {}",
            row.edge
        );
        assert_eq!(
            row.trunk_in_pkts as f64,
            field("trunk_in_pkts"),
            "edge {}",
            row.edge
        );
    }
}
